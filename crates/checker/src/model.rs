//! Extraction of the abstract write/snapshot model from a raw history.

use sss_types::{History, NodeId, OpId, OpResponse, SnapshotOp, Value};
use std::collections::HashMap;

/// Why a history is not linearizable (or not checkable).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// Two writes used the same value; the black-box checker needs unique
    /// values (a workload bug, not a protocol bug).
    DuplicateWriteValue {
        /// The offending value.
        value: Value,
    },
    /// A snapshot returned, for some register, a value never written by
    /// that register's writer.
    UnknownValue {
        /// The snapshot operation.
        snapshot: OpId,
        /// The register index.
        register: NodeId,
        /// The unexplained value.
        value: Value,
    },
    /// Two snapshots observed `⪯`-incomparable register states.
    IncomparableSnapshots {
        /// One snapshot.
        a: OpId,
        /// The other snapshot.
        b: OpId,
    },
    /// A write that completed before a snapshot began is missing from it.
    MissingCompletedWrite {
        /// The snapshot operation.
        snapshot: OpId,
        /// The missed write.
        write: OpId,
    },
    /// A snapshot that completed before a write began already contains it.
    ReadFromTheFuture {
        /// The snapshot operation.
        snapshot: OpId,
        /// The future write.
        write: OpId,
    },
    /// A later snapshot observed strictly less than an earlier one.
    SnapshotsDisrespectRealTime {
        /// The earlier (completed-first) snapshot.
        earlier: OpId,
        /// The later (invoked-after) snapshot.
        later: OpId,
    },
    /// A snapshot contains a write but misses another write that
    /// real-time-preceded it.
    NonMonotoneContainment {
        /// The write that finished first and is missing.
        missing: OpId,
        /// The contained write that started later.
        contained: OpId,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::DuplicateWriteValue { value } => {
                write!(f, "two writes used the same value {value}")
            }
            Violation::UnknownValue {
                snapshot,
                register,
                value,
            } => write!(
                f,
                "snapshot {snapshot:?} returned value {value} for register {register:?}, \
                 which its writer never wrote"
            ),
            Violation::IncomparableSnapshots { a, b } => {
                write!(f, "snapshots {a:?} and {b:?} observed incomparable states")
            }
            Violation::MissingCompletedWrite { snapshot, write } => write!(
                f,
                "snapshot {snapshot:?} misses write {write:?}, which completed before it began"
            ),
            Violation::ReadFromTheFuture { snapshot, write } => write!(
                f,
                "snapshot {snapshot:?} completed before write {write:?} began yet contains it"
            ),
            Violation::SnapshotsDisrespectRealTime { earlier, later } => write!(
                f,
                "snapshot {later:?} observed strictly less than {earlier:?}, \
                 which completed before it began"
            ),
            Violation::NonMonotoneContainment { missing, contained } => write!(
                f,
                "a snapshot contains write {contained:?} but misses write {missing:?}, \
                 which real-time-preceded it"
            ),
        }
    }
}

/// One write operation in the abstract model.
#[derive(Clone, Debug)]
pub struct WriteRec {
    /// Operation id.
    pub op: OpId,
    /// The writer.
    pub writer: NodeId,
    /// 1-based per-writer sequence index.
    pub index: u64,
    /// Invocation time.
    pub invoked_at: u64,
    /// Completion time (`None` while pending).
    pub completed_at: Option<u64>,
}

/// One completed snapshot in the abstract model.
#[derive(Clone, Debug)]
pub struct SnapRec {
    /// Operation id.
    pub op: OpId,
    /// Per-writer version vector: component `k` is the per-writer index
    /// of the latest write by `k` the snapshot observed (0 = `⊥`).
    pub vec: Vec<u64>,
    /// Invocation time.
    pub invoked_at: u64,
    /// Completion time.
    pub completed_at: u64,
}

/// The abstract model extracted from a history.
#[derive(Clone, Debug, Default)]
pub struct Extracted {
    /// All writes (completed and pending), per-writer indices assigned in
    /// invocation order.
    pub writes: Vec<WriteRec>,
    /// All completed snapshots.
    pub snaps: Vec<SnapRec>,
    /// Violations found during extraction (unknown/duplicate values).
    pub violations: Vec<Violation>,
}

impl Extracted {
    /// Builds the model from a history. `n` is the number of processes
    /// (registers).
    pub fn from_history(history: &History, n: usize) -> Extracted {
        let mut out = Extracted::default();
        // Per-writer sequence indices in invocation order (records are in
        // invocation order; clients are sequential per node).
        let mut next_index = vec![0u64; n];
        let mut by_value: HashMap<(usize, Value), u64> = HashMap::new();
        for rec in history.records() {
            if let SnapshotOp::Write(v) = rec.op {
                let k = rec.node.index();
                next_index[k] += 1;
                let index = next_index[k];
                if by_value.insert((k, v), index).is_some() {
                    out.violations
                        .push(Violation::DuplicateWriteValue { value: v });
                }
                out.writes.push(WriteRec {
                    op: rec.id,
                    writer: rec.node,
                    index,
                    invoked_at: rec.invoked_at,
                    // A write aborted by §5's global reset has *unknown*
                    // outcome — it may already have taken effect at some
                    // nodes when the reset discarded it. Model it like a
                    // pending write: possibly-effective, constraining
                    // only through its invocation time.
                    completed_at: if rec.aborted { None } else { rec.completed_at },
                });
            }
        }
        for rec in history.records() {
            if rec.aborted || !matches!(rec.op, SnapshotOp::Snapshot) {
                continue;
            }
            let (Some(done), Some(OpResponse::Snapshot(view))) =
                (rec.completed_at, rec.response.as_ref())
            else {
                continue; // pending snapshots constrain nothing
            };
            let mut vec = vec![0u64; n];
            for (k, val) in view.values().iter().enumerate() {
                match val {
                    None => vec[k] = 0,
                    Some(v) => match by_value.get(&(k, *v)) {
                        Some(&idx) => vec[k] = idx,
                        None => out.violations.push(Violation::UnknownValue {
                            snapshot: rec.id,
                            register: NodeId(k),
                            value: *v,
                        }),
                    },
                }
            }
            out.snaps.push(SnapRec {
                op: rec.id,
                vec,
                invoked_at: rec.invoked_at,
                completed_at: done,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sss_types::{RegArray, SnapshotView, Tagged};

    fn view(cells: &[(usize, Value, u64)], n: usize) -> SnapshotView {
        let mut reg = RegArray::bottom(n);
        for &(k, v, ts) in cells {
            reg.set(NodeId(k), Tagged::new(v, ts));
        }
        (&reg).into()
    }

    #[test]
    fn extracts_indices_in_invocation_order() {
        let mut h = History::new();
        h.record_invoke(NodeId(0), OpId(0), SnapshotOp::Write(10), 0);
        h.record_complete(OpId(0), OpResponse::WriteDone, 5);
        h.record_invoke(NodeId(0), OpId(1), SnapshotOp::Write(11), 6);
        h.record_complete(OpId(1), OpResponse::WriteDone, 9);
        h.record_invoke(NodeId(1), OpId(2), SnapshotOp::Write(20), 2);
        let m = Extracted::from_history(&h, 2);
        assert_eq!(m.writes.len(), 3);
        assert_eq!(m.writes[0].index, 1);
        assert_eq!(m.writes[1].index, 2);
        assert_eq!(m.writes[2].index, 1, "per-writer sequence");
        assert!(m.writes[2].completed_at.is_none());
        assert!(m.violations.is_empty());
    }

    #[test]
    fn snapshot_vectors_map_values_to_indices() {
        let mut h = History::new();
        h.record_invoke(NodeId(0), OpId(0), SnapshotOp::Write(10), 0);
        h.record_complete(OpId(0), OpResponse::WriteDone, 5);
        h.record_invoke(NodeId(1), OpId(1), SnapshotOp::Snapshot, 6);
        h.record_complete(OpId(1), OpResponse::Snapshot(view(&[(0, 10, 1)], 2)), 9);
        let m = Extracted::from_history(&h, 2);
        assert_eq!(m.snaps.len(), 1);
        assert_eq!(m.snaps[0].vec, vec![1, 0]);
    }

    #[test]
    fn unknown_value_is_flagged() {
        let mut h = History::new();
        h.record_invoke(NodeId(1), OpId(0), SnapshotOp::Snapshot, 0);
        h.record_complete(OpId(0), OpResponse::Snapshot(view(&[(0, 666, 3)], 2)), 4);
        let m = Extracted::from_history(&h, 2);
        assert!(matches!(
            m.violations[0],
            Violation::UnknownValue { value: 666, .. }
        ));
    }

    #[test]
    fn duplicate_values_are_flagged() {
        let mut h = History::new();
        h.record_invoke(NodeId(0), OpId(0), SnapshotOp::Write(7), 0);
        h.record_complete(OpId(0), OpResponse::WriteDone, 2);
        h.record_invoke(NodeId(0), OpId(1), SnapshotOp::Write(7), 3);
        let m = Extracted::from_history(&h, 1);
        assert!(matches!(
            m.violations[0],
            Violation::DuplicateWriteValue { value: 7 }
        ));
    }

    #[test]
    fn aborted_writes_are_possibly_effective() {
        // §5's reset aborts with unknown outcome: the write keeps its
        // value binding (a snapshot may legitimately observe it) but no
        // completion time (nothing is *required* to observe it).
        let mut h = History::new();
        h.record_invoke(NodeId(0), OpId(0), SnapshotOp::Write(1), 0);
        h.record_abort(OpId(0), 2);
        h.record_invoke(NodeId(0), OpId(1), SnapshotOp::Snapshot, 3);
        h.record_complete(OpId(1), OpResponse::Snapshot(view(&[(0, 1, 1)], 1)), 5);
        let m = Extracted::from_history(&h, 1);
        assert_eq!(m.writes.len(), 1);
        assert!(m.writes[0].completed_at.is_none());
        assert!(m.violations.is_empty(), "{:?}", m.violations);
        assert_eq!(m.snaps[0].vec, vec![1]);
    }

    #[test]
    fn aborted_snapshots_constrain_nothing() {
        let mut h = History::new();
        h.record_invoke(NodeId(0), OpId(0), SnapshotOp::Snapshot, 0);
        h.record_abort(OpId(0), 2);
        let m = Extracted::from_history(&h, 1);
        assert!(m.snaps.is_empty());
    }
}
