//! Property-based cross-validation: the polynomial checker must agree
//! with the exhaustive Wing&Gong search on every small history.

use proptest::prelude::*;
use sss_checker::{check, check_brute_force};
use sss_types::{History, NodeId, OpId, OpResponse, RegArray, SnapshotOp, SnapshotView, Tagged};

/// One generated operation, before serialization per node.
#[derive(Clone, Debug)]
enum GenOp {
    Write { pending: bool },
    Snapshot { vec_seed: Vec<u8>, dur: u8 },
}

/// Builds a history from generated ops: per-node invocations are
/// sequential (clients are sequential); values are unique `(node, seq)`
/// encodings; snapshot result vectors are derived from the seed, clamped
/// to the number of writes each writer has (so values always decode).
fn build_history(n: usize, ops: Vec<(u8, u8, GenOp)>) -> History {
    let mut h = History::new();
    let mut node_clock = vec![0u64; n]; // per-node next free time
    let mut writes_so_far = vec![0u64; n];
    let mut total_writes = vec![0u64; n];
    for (node, _, op) in &ops {
        if matches!(op, GenOp::Write { .. }) {
            total_writes[*node as usize % n] += 1;
        }
    }
    let mut dead = vec![false; n]; // a pending op is its node's last op
    let mut id = 0u64;
    for (node, gap, op) in ops {
        let k = node as usize % n;
        if dead[k] {
            continue;
        }
        let start = node_clock[k] + gap as u64;
        let oid = OpId(id);
        id += 1;
        match op {
            GenOp::Write { pending } => {
                writes_so_far[k] += 1;
                let value = (k as u64) << 32 | writes_so_far[k];
                h.record_invoke(NodeId(k), oid, SnapshotOp::Write(value), start);
                if pending {
                    dead[k] = true;
                } else {
                    let end = start + 3;
                    h.record_complete(oid, OpResponse::WriteDone, end);
                    node_clock[k] = end + 1;
                }
            }
            GenOp::Snapshot { vec_seed, dur } => {
                h.record_invoke(NodeId(k), oid, SnapshotOp::Snapshot, start);
                let end = start + 1 + dur as u64;
                let mut reg = RegArray::bottom(n);
                for (w, seed) in vec_seed.iter().enumerate().take(n) {
                    let idx = (*seed as u64) % (total_writes[w] + 1);
                    if idx > 0 {
                        let value = (w as u64) << 32 | idx;
                        reg.set(NodeId(w), Tagged::new(value, idx));
                    }
                }
                let view: SnapshotView = (&reg).into();
                h.record_complete(oid, OpResponse::Snapshot(view), end);
                node_clock[k] = end + 1;
            }
        }
    }
    h
}

fn gen_op(n: usize) -> impl Strategy<Value = GenOp> {
    prop_oneof![
        3 => Just(GenOp::Write { pending: false }),
        1 => Just(GenOp::Write { pending: true }),
        3 => (proptest::collection::vec(0u8..4, n), 0u8..20)
            .prop_map(|(vec_seed, dur)| GenOp::Snapshot { vec_seed, dur }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// The polynomial checker and the exhaustive oracle agree.
    #[test]
    fn poly_agrees_with_brute_force(
        n in 2usize..4,
        ops in proptest::collection::vec(
            (0u8..4, 0u8..10, gen_op(3)),
            0..7,
        )
    ) {
        let h = build_history(n, ops);
        let poly = check(&h, n).is_linearizable();
        let brute = check_brute_force(&h, n);
        prop_assert_eq!(poly, brute, "history: {:?}", h);
    }

    /// Sequential histories with truthful snapshots are always accepted.
    #[test]
    fn truthful_sequential_histories_pass(
        n in 1usize..4,
        writes_per_node in proptest::collection::vec(0u64..4, 1..4),
    ) {
        let mut h = History::new();
        let mut t = 0u64;
        let mut id = 0u64;
        let mut state = vec![0u64; n];
        let mut reg = RegArray::bottom(n);
        for (k, &cnt) in writes_per_node.iter().enumerate().take(n) {
            for j in 1..=cnt {
                let value = (k as u64) << 32 | j;
                h.record_invoke(NodeId(k), OpId(id), SnapshotOp::Write(value), t);
                h.record_complete(OpId(id), OpResponse::WriteDone, t + 2);
                id += 1;
                t += 5;
                state[k] = j;
                reg.set(NodeId(k), Tagged::new(value, j));
                // A truthful snapshot right after the write.
                let view: SnapshotView = (&reg).into();
                h.record_invoke(NodeId((k + 1) % n), OpId(id), SnapshotOp::Snapshot, t);
                h.record_complete(OpId(id), OpResponse::Snapshot(view), t + 2);
                id += 1;
                t += 5;
            }
        }
        prop_assert!(check(&h, n).is_linearizable());
        if id <= 16 {
            prop_assert!(check_brute_force(&h, n));
        }
    }
}
