//! Property tests for the shared fault-plane primitives: the partition
//! cut matrix and the per-link determinism contract of [`LinkModel`].

use proptest::prelude::*;
use sss_net::{cut_matrix, LinkConfig, LinkModel, LinkVerdict};
use sss_types::NodeId;

/// A random group-based partition spec over `n` nodes: each node is
/// assigned to one of `groups` slots or left ungrouped (isolated).
/// Empty groups are dropped, mirroring how callers build specs.
fn partition_spec(n: usize, groups: usize) -> impl Strategy<Value = Vec<Vec<NodeId>>> {
    proptest::collection::vec(0..=groups, n).prop_map(move |assignment| {
        let mut spec = vec![Vec::new(); groups];
        for (i, &g) in assignment.iter().enumerate() {
            if g < groups {
                spec[g].push(NodeId(i));
            }
        }
        spec.retain(|g| !g.is_empty());
        spec
    })
}

proptest! {
    /// The cut matrix is symmetric: partitions cut (and restore) links
    /// in both directions, never just one.
    #[test]
    fn cut_matrix_is_symmetric(n in 2usize..8, spec in partition_spec(7, 3)) {
        let spec: Vec<Vec<NodeId>> = spec
            .into_iter()
            .map(|g| g.into_iter().filter(|m| m.index() < n).collect::<Vec<_>>())
            .filter(|g: &Vec<NodeId>| !g.is_empty())
            .collect();
        let down = cut_matrix(n, &spec);
        for a in 0..n {
            for b in 0..n {
                prop_assert_eq!(down[a * n + b], down[b * n + a], "link {}-{}", a, b);
            }
        }
    }

    /// Within a group every link is up; across groups every link is
    /// cut; a node in no group is isolated from everyone.
    #[test]
    fn cut_matrix_respects_group_membership(n in 2usize..8, spec in partition_spec(7, 3)) {
        let spec: Vec<Vec<NodeId>> = spec
            .into_iter()
            .map(|g| g.into_iter().filter(|m| m.index() < n).collect::<Vec<_>>())
            .filter(|g: &Vec<NodeId>| !g.is_empty())
            .collect();
        let down = cut_matrix(n, &spec);
        let group_of = |x: usize| spec.iter().position(|g| g.contains(&NodeId(x)));
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    prop_assert!(!down[a * n + b], "self-links are never cut");
                    continue;
                }
                let expect_cut = match (group_of(a), group_of(b)) {
                    (Some(ga), Some(gb)) => ga != gb,
                    _ => true, // ungrouped nodes are fully isolated
                };
                prop_assert_eq!(down[a * n + b], expect_cut, "link {}->{}", a, b);
            }
        }
    }

    /// The per-link determinism contract: a link's verdict sequence
    /// depends only on the traffic *on that link*, not on how sends
    /// across different links interleave globally. Two same-seed models
    /// fed the same per-link send counts in different global orders
    /// produce identical per-link verdict streams — the property that
    /// makes the simulator and the threaded runtime draw the same coins.
    #[test]
    fn same_seed_verdicts_are_interleaving_independent(
        seed in any::<u64>(),
        sends in proptest::collection::vec((0usize..4, 0usize..4), 1..60),
        perm_seed in any::<u64>(),
    ) {
        let n = 4;
        let cfg = LinkConfig {
            delay_min: 1,
            delay_max: 30,
            loss: 0.2,
            dup: 0.2,
            capacity: 0, // load accounting depends on delivery timing, not order
        };
        let sends: Vec<(NodeId, NodeId)> = sends
            .into_iter()
            .filter(|(f, t)| f != t)
            .map(|(f, t)| (NodeId(f), NodeId(t)))
            .collect();
        // A deterministic shuffle that keeps each link's subsequence in
        // order (stable grouping by link): global interleaving changes,
        // per-link traffic does not.
        let mut reordered: Vec<(NodeId, NodeId)> = Vec::new();
        let mut links: Vec<(NodeId, NodeId)> = sends.clone();
        links.sort_by_key(|(f, t)| (f.index() + t.index() * 7) ^ (perm_seed as usize % 13));
        links.dedup();
        for link in links {
            reordered.extend(sends.iter().filter(|s| **s == link));
        }
        prop_assert_eq!(reordered.len(), sends.len());

        let mut a = LinkModel::new(n, cfg, seed);
        let mut b = LinkModel::new(n, cfg, seed);
        let mut verdicts_a: Vec<((NodeId, NodeId), LinkVerdict)> = sends
            .iter()
            .map(|&(f, t)| ((f, t), a.on_send(f, t)))
            .collect();
        let mut verdicts_b: Vec<((NodeId, NodeId), LinkVerdict)> = reordered
            .iter()
            .map(|&(f, t)| ((f, t), b.on_send(f, t)))
            .collect();
        // Compare per-link streams: sort by link, keeping each link's
        // verdicts in send order (the sort is stable).
        verdicts_a.sort_by_key(|((f, t), _)| (f.index(), t.index()));
        verdicts_b.sort_by_key(|((f, t), _)| (f.index(), t.index()));
        prop_assert_eq!(verdicts_a, verdicts_b);
    }
}
