//! The per-link channel model shared by both backends.

use crate::ModelTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sss_types::NodeId;

/// The channel model for every directed link.
///
/// Channels are the paper's: bounded capacity, no delay guarantees, and
/// packets "may be lost, duplicated and reordered". Reordering emerges
/// from independent per-message delays; loss and duplication are
/// independent Bernoulli trials. Self-delivery (a node's `broadcast`
/// reaching itself) never passes through the link model — it is
/// reliable and immediate, modelling an internal step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkConfig {
    /// Minimum one-way delay, in model microseconds.
    pub delay_min: ModelTime,
    /// Maximum one-way delay, in model microseconds.
    pub delay_max: ModelTime,
    /// Probability that a packet is lost.
    pub loss: f64,
    /// Probability that a packet is duplicated (delivered twice with
    /// independent delays).
    pub dup: f64,
    /// Per-link in-flight capacity; a send that would exceed it is
    /// dropped (the paper's *bounded capacity communication channel*).
    /// `0` means unbounded.
    pub capacity: usize,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            delay_min: 1,
            delay_max: 10,
            loss: 0.0,
            dup: 0.0,
            capacity: 128,
        }
    }
}

impl LinkConfig {
    /// A lossy, duplicating network — the adversarial end of the paper's
    /// channel model.
    pub fn harsh() -> Self {
        LinkConfig {
            delay_min: 1,
            delay_max: 50,
            loss: 0.2,
            dup: 0.1,
            capacity: 64,
        }
    }

    /// A reliable unbounded configuration (wall-clock backends, where
    /// delay comes from the OS scheduler rather than the model).
    pub fn reliable() -> Self {
        LinkConfig {
            delay_min: 0,
            delay_max: 0,
            loss: 0.0,
            dup: 0.0,
            capacity: 0,
        }
    }
}

/// Why the link model dropped a message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// The directed link is cut (partition or explicit link-down).
    LinkDown,
    /// The loss coin came up.
    Loss,
    /// The link's in-flight capacity is exhausted.
    Capacity,
}

impl From<DropReason> for sss_obs::DropCause {
    /// Maps a link-model drop verdict onto the trace-plane cause (the
    /// trace plane adds one more cause, `Crashed`, for receiver-side
    /// drops the link model never sees).
    fn from(r: DropReason) -> Self {
        match r {
            DropReason::LinkDown => sss_obs::DropCause::LinkDown,
            DropReason::Loss => sss_obs::DropCause::Loss,
            DropReason::Capacity => sss_obs::DropCause::Capacity,
        }
    }
}

/// The link model's decision for one send.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkVerdict {
    /// Deliver after `delay`; if `duplicate` is set, deliver a second
    /// copy after that independent delay too.
    Deliver {
        /// One-way delay of the primary copy, in model microseconds.
        delay: ModelTime,
        /// Independent delay of the duplicate copy, if any.
        duplicate: Option<ModelTime>,
    },
    /// Drop the message (and account it) for the given reason.
    Drop(DropReason),
}

/// Computes the directed link-down matrix (`from * n + to`) for a
/// group-based partition spec: links between different groups are cut in
/// both directions, links within a group restored, and nodes in **no**
/// group are isolated entirely. This is the single partition semantics
/// both backends share.
pub fn cut_matrix(n: usize, groups: &[Vec<NodeId>]) -> Vec<bool> {
    let mut group_of = vec![usize::MAX; n];
    for (g, members) in groups.iter().enumerate() {
        for m in members {
            group_of[m.index()] = g;
        }
    }
    let mut down = vec![false; n * n];
    for a in 0..n {
        for b in 0..n {
            let cut = group_of[a] != group_of[b]
                || group_of[a] == usize::MAX
                || group_of[b] == usize::MAX;
            down[a * n + b] = a != b && cut;
        }
    }
    down
}

/// Per-link fault decisions from seeded RNG streams, plus the link-down
/// matrix and in-flight load accounting.
///
/// Each directed link has its **own** RNG stream seeded from
/// `(seed, from, to)`, so the coin sequence a link sees depends only on
/// the traffic *on that link* — two backends replaying the same per-link
/// traffic draw the same coins even if their global event interleavings
/// differ.
#[derive(Clone, Debug)]
pub struct LinkModel {
    cfg: LinkConfig,
    n: usize,
    streams: Vec<StdRng>,
    load: Vec<usize>,
    down: Vec<bool>,
}

impl LinkModel {
    /// A model for `n` nodes with per-link streams derived from `seed`.
    pub fn new(n: usize, cfg: LinkConfig, seed: u64) -> Self {
        let streams = (0..n * n)
            .map(|l| StdRng::seed_from_u64(mix(seed, l as u64)))
            .collect();
        LinkModel {
            cfg,
            n,
            streams,
            load: vec![0; n * n],
            down: vec![false; n * n],
        }
    }

    /// The channel configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.cfg
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    fn idx(&self, from: NodeId, to: NodeId) -> usize {
        from.index() * self.n + to.index()
    }

    /// Whether the directed link `from → to` is currently cut.
    pub fn is_down(&self, from: NodeId, to: NodeId) -> bool {
        self.down[self.idx(from, to)]
    }

    /// Cuts (`up = false`) or restores the directed link `from → to`.
    pub fn set_link(&mut self, from: NodeId, to: NodeId, up: bool) {
        let l = self.idx(from, to);
        self.down[l] = !up;
    }

    /// Applies a group-based partition (see [`cut_matrix`]).
    pub fn partition(&mut self, groups: &[Vec<NodeId>]) {
        self.down = cut_matrix(self.n, groups);
    }

    /// Restores every link.
    pub fn heal(&mut self) {
        self.down.iter_mut().for_each(|d| *d = false);
    }

    /// Decides the fate of one message sent on `from → to`, consuming
    /// that link's coins and charging its in-flight load for each copy
    /// to be delivered. Checks run in the fixed order *link-down → loss
    /// → capacity → duplication*, so drop accounting is identical on
    /// every backend.
    ///
    /// # Panics
    ///
    /// Panics if `from == to`: self-delivery bypasses the link model.
    pub fn on_send(&mut self, from: NodeId, to: NodeId) -> LinkVerdict {
        assert_ne!(from, to, "self-delivery bypasses the link model");
        let l = self.idx(from, to);
        if self.down[l] {
            return LinkVerdict::Drop(DropReason::LinkDown);
        }
        let cfg = self.cfg;
        let rng = &mut self.streams[l];
        if cfg.loss > 0.0 && rng.gen_bool(cfg.loss) {
            return LinkVerdict::Drop(DropReason::Loss);
        }
        if cfg.capacity > 0 && self.load[l] >= cfg.capacity {
            return LinkVerdict::Drop(DropReason::Capacity);
        }
        let dup = cfg.dup > 0.0 && rng.gen_bool(cfg.dup);
        let delay = rng.gen_range(cfg.delay_min..=cfg.delay_max);
        self.load[l] += 1;
        let duplicate = if dup && (cfg.capacity == 0 || self.load[l] < cfg.capacity) {
            let d2 = self.streams[l].gen_range(cfg.delay_min..=cfg.delay_max);
            self.load[l] += 1;
            Some(d2)
        } else {
            None
        };
        LinkVerdict::Deliver { delay, duplicate }
    }

    /// Releases one unit of in-flight load on `from → to`; call when a
    /// copy leaves the link (delivered or discarded at the receiver).
    pub fn on_delivered(&mut self, from: NodeId, to: NodeId) {
        let l = self.idx(from, to);
        self.load[l] = self.load[l].saturating_sub(1);
    }

    /// Current in-flight load on `from → to` (tests/diagnostics).
    pub fn load(&self, from: NodeId, to: NodeId) -> usize {
        self.load[self.idx(from, to)]
    }
}

/// SplitMix-style seed mixing for per-link streams (the shared
/// [`crate::mix64`]).
use crate::mix64 as mix;

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[usize]) -> Vec<NodeId> {
        v.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn reliable_link_always_delivers() {
        let mut m = LinkModel::new(3, LinkConfig::default(), 1);
        for _ in 0..100 {
            match m.on_send(NodeId(0), NodeId(1)) {
                LinkVerdict::Deliver { delay, duplicate } => {
                    assert!((1..=10).contains(&delay));
                    assert!(duplicate.is_none());
                }
                v => panic!("unexpected {v:?}"),
            }
            m.on_delivered(NodeId(0), NodeId(1));
        }
    }

    #[test]
    fn same_seed_same_coins_per_link() {
        let run = |seed| {
            let mut m = LinkModel::new(3, LinkConfig::harsh(), seed);
            (0..200)
                .map(|_| {
                    let v = m.on_send(NodeId(0), NodeId(2));
                    if matches!(v, LinkVerdict::Deliver { .. }) {
                        m.on_delivered(NodeId(0), NodeId(2));
                    }
                    v
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn links_have_independent_streams() {
        // Interleaving traffic on link A must not perturb link B's coins.
        let solo = {
            let mut m = LinkModel::new(3, LinkConfig::harsh(), 9);
            (0..50)
                .map(|_| m.on_send(NodeId(1), NodeId(2)))
                .collect::<Vec<_>>()
        };
        let interleaved = {
            let mut m = LinkModel::new(3, LinkConfig::harsh(), 9);
            (0..50)
                .map(|_| {
                    let _ = m.on_send(NodeId(0), NodeId(1));
                    m.on_send(NodeId(1), NodeId(2))
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(solo, interleaved);
    }

    #[test]
    fn capacity_bounds_in_flight_load() {
        let cfg = LinkConfig {
            capacity: 2,
            ..LinkConfig::default()
        };
        let mut m = LinkModel::new(2, cfg, 3);
        assert!(matches!(
            m.on_send(NodeId(0), NodeId(1)),
            LinkVerdict::Deliver { .. }
        ));
        assert!(matches!(
            m.on_send(NodeId(0), NodeId(1)),
            LinkVerdict::Deliver { .. }
        ));
        assert_eq!(
            m.on_send(NodeId(0), NodeId(1)),
            LinkVerdict::Drop(DropReason::Capacity)
        );
        m.on_delivered(NodeId(0), NodeId(1));
        assert!(matches!(
            m.on_send(NodeId(0), NodeId(1)),
            LinkVerdict::Deliver { .. }
        ));
    }

    #[test]
    fn partition_cuts_across_groups_only() {
        let mut m = LinkModel::new(4, LinkConfig::default(), 0);
        m.partition(&[ids(&[0, 1]), ids(&[2])]);
        assert!(!m.is_down(NodeId(0), NodeId(1)));
        assert!(m.is_down(NodeId(0), NodeId(2)));
        assert!(m.is_down(NodeId(2), NodeId(1)));
        // Node 3 is in no group: fully isolated.
        assert!(m.is_down(NodeId(3), NodeId(0)));
        assert!(m.is_down(NodeId(0), NodeId(3)));
        assert_eq!(
            m.on_send(NodeId(0), NodeId(2)),
            LinkVerdict::Drop(DropReason::LinkDown)
        );
        m.heal();
        assert!(!m.is_down(NodeId(0), NodeId(2)));
    }

    #[test]
    fn cut_matrix_matches_model_partition() {
        let groups = [ids(&[0, 2]), ids(&[1, 3])];
        let mut m = LinkModel::new(4, LinkConfig::default(), 0);
        m.partition(&groups);
        let mat = cut_matrix(4, &groups);
        for a in 0..4 {
            for b in 0..4 {
                assert_eq!(m.is_down(NodeId(a), NodeId(b)), mat[a * 4 + b]);
            }
        }
    }

    #[test]
    fn directed_cut_is_one_way() {
        let mut m = LinkModel::new(2, LinkConfig::default(), 0);
        m.set_link(NodeId(0), NodeId(1), false);
        assert!(m.is_down(NodeId(0), NodeId(1)));
        assert!(!m.is_down(NodeId(1), NodeId(0)));
        m.set_link(NodeId(0), NodeId(1), true);
        assert!(!m.is_down(NodeId(0), NodeId(1)));
    }

    #[test]
    fn harsh_config_actually_drops_and_duplicates() {
        let mut m = LinkModel::new(2, LinkConfig::harsh(), 7);
        let mut drops = 0;
        let mut dups = 0;
        for _ in 0..1000 {
            match m.on_send(NodeId(0), NodeId(1)) {
                LinkVerdict::Drop(DropReason::Loss) => drops += 1,
                LinkVerdict::Deliver { duplicate, .. } => {
                    if duplicate.is_some() {
                        dups += 1;
                        m.on_delivered(NodeId(0), NodeId(1));
                    }
                    m.on_delivered(NodeId(0), NodeId(1));
                }
                _ => {
                    m.on_delivered(NodeId(0), NodeId(1));
                }
            }
        }
        assert!(drops > 100, "loss ~20%: {drops}");
        assert!(dups > 30, "dup ~10%: {dups}");
    }
}
