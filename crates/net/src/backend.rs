//! The backend abstraction: run one `(FaultPlan, WorkloadSpec)` scenario
//! on some execution model and get back a checkable [`History`].

use crate::{FaultPlan, ModelTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sss_obs::Tracer;
use sss_types::{History, NodeId, SnapshotOp, Value};

/// Encodes a globally unique write value for `node`'s `seq`-th write.
///
/// Uniqueness across nodes and sequences is what lets the
/// linearizability checker treat histories as black boxes.
pub fn unique_value(node: NodeId, seq: u64) -> Value {
    ((node.index() as u64 + 1) << 40) | seq
}

/// A deterministic per-node workload: each node executes a seeded
/// sequence of writes and snapshots, closed-loop, with think times
/// between operations and a per-operation timeout after which the
/// client moves on (the operation stays pending in the history).
///
/// Both backends derive **the same** per-node operation sequence from a
/// spec, so a scenario is comparable across execution models.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Number of operations each node performs.
    pub ops_per_node: usize,
    /// Probability that an operation is a write (vs a snapshot).
    pub write_ratio: f64,
    /// Uniform think-time range before each operation, in model
    /// microseconds.
    pub think: (ModelTime, ModelTime),
    /// RNG seed for operation choice and think times.
    pub seed: u64,
    /// Per-operation client timeout, in model microseconds; on expiry
    /// the client abandons the operation (it stays pending) and issues
    /// its next one.
    pub op_timeout: ModelTime,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            ops_per_node: 10,
            write_ratio: 0.5,
            think: (0, 200),
            seed: 7,
            op_timeout: 50_000,
        }
    }
}

impl WorkloadSpec {
    /// The operation sequence for `node`: `(think_before, op)` pairs.
    /// Pure function of `(spec, node)` — identical on every backend.
    pub fn ops_for(&self, node: NodeId) -> Vec<(ModelTime, SnapshotOp)> {
        let mut rng = StdRng::seed_from_u64(mix(self.seed, node.index() as u64));
        let (lo, hi) = self.think;
        let mut seq = 0u64;
        (0..self.ops_per_node)
            .map(|_| {
                let think = if hi > lo { rng.gen_range(lo..=hi) } else { lo };
                let op = if rng.gen_bool(self.write_ratio) {
                    seq += 1;
                    SnapshotOp::Write(unique_value(node, seq))
                } else {
                    SnapshotOp::Snapshot
                };
                (think, op)
            })
            .collect()
    }

    /// Total operations the spec issues across `n` nodes.
    pub fn total_ops(&self, n: usize) -> usize {
        self.ops_per_node * n
    }
}

/// How a backend batches and coalesces message delivery.
///
/// The threaded runtime drains each node's whole inbox backlog per
/// wakeup and merges consecutive same-destination sends via
/// `ProtoMsg::try_coalesce`; this policy bounds the former and toggles
/// the latter, so parity tests can pin both backends to comparable
/// delivery behavior (and ablation runs can switch the optimizations
/// off). The simulator's virtual-time scheduler is already equivalent
/// to an unbounded batch with no in-flight reordering, so it accepts
/// the policy as a documented no-op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Maximum messages a node applies per wakeup before flushing its
    /// sends and re-checking control traffic (`0` = unbounded).
    pub max_batch: usize,
    /// Whether consecutive same-destination sends inside one protocol
    /// step may merge via `ProtoMsg::try_coalesce`.
    pub coalesce: bool,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 1024,
            coalesce: true,
        }
    }
}

impl BatchPolicy {
    /// The pre-refactor delivery behavior: one message per wakeup, no
    /// merging. Useful as an ablation baseline and in parity tests.
    pub fn unbatched() -> Self {
        BatchPolicy {
            max_batch: 1,
            coalesce: false,
        }
    }
}

/// Aggregate outcome counters a backend reports alongside the history.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Operations that completed at the client boundary.
    pub ops_completed: u64,
    /// Operations the client abandoned on timeout (still pending in the
    /// history).
    pub ops_timed_out: u64,
    /// Operations failed fast by the failure detector because the
    /// contacted node could not reach a majority (threaded runtime's
    /// `ClusterError::Unavailable`; always 0 on the simulator, whose
    /// clients wait out their full virtual-time timeout).
    pub ops_unavailable: u64,
    /// Messages dropped by the link model (loss, capacity, partition)
    /// or by crashed receivers.
    pub messages_dropped: u64,
    /// Model time the run covered, in model microseconds (virtual time
    /// for the simulator; scaled wall time for threads).
    pub model_time: ModelTime,
}

/// End-of-run bounded-counter probes for one node. All-default for
/// protocols without an epoch envelope (`epoch_probe() == None`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeProbe {
    /// The node's global-reset epoch when the run ended.
    pub epoch: u64,
    /// Whether a global reset was still in progress at the end.
    pub wrapping: bool,
    /// Whether the node's local invariants held at the end.
    pub invariants_ok: bool,
    /// Inner messages the node's epoch envelope discarded over the run.
    pub stale_epoch_dropped: u64,
}

/// What a backend returns for one scenario run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Which backend produced this (e.g. `"sim"`, `"threads"`).
    pub backend: &'static str,
    /// The client-boundary history, checkable by `sss-checker`.
    pub history: History,
    /// Outcome counters.
    pub stats: RunStats,
    /// Per-node end-of-run probes, indexed by node id (empty when the
    /// backend cannot sample final protocol state).
    pub probes: Vec<NodeProbe>,
}

/// An execution model that can replay a fault plan under a workload.
///
/// Implementations: `sss_sim::SimBackend` (deterministic virtual time)
/// and `sss_runtime::ThreadBackend` (real threads, wall clock). Both
/// interpret the plan through the same [`crate::LinkModel`] /
/// [`crate::cut_matrix`] semantics, so a scenario means the same thing
/// everywhere — modulo virtual vs. wall-clock time.
pub trait Backend {
    /// A short stable name for reports and `--backend` flags.
    fn label(&self) -> &'static str;

    /// Replays `plan` while `workload` runs, emitting structured trace
    /// events through `tracer` (which may be [`Tracer::off`]), and
    /// returns the recorded history and outcome counters.
    ///
    /// Both backends emit the same `sss_obs::TraceEvent` schema with
    /// model-microsecond timestamps, so one scenario yields comparable
    /// logical traces across execution models.
    fn run_traced(
        &mut self,
        plan: &FaultPlan,
        workload: &WorkloadSpec,
        tracer: &Tracer,
    ) -> RunReport;

    /// [`Backend::run_traced`] with tracing disabled.
    fn run(&mut self, plan: &FaultPlan, workload: &WorkloadSpec) -> RunReport {
        self.run_traced(plan, workload, &Tracer::off())
    }

    /// Sets the delivery batching/coalescing policy for subsequent runs.
    ///
    /// Defaults to a no-op so backends whose delivery model has no
    /// meaningful batching knob (the virtual-time simulator) satisfy the
    /// trait unchanged; the threaded runtime overrides this.
    fn set_batch_policy(&mut self, _policy: BatchPolicy) {}
}

use crate::mix64 as mix;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_values_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for node in 0..8 {
            for seq in 1..100 {
                assert!(seen.insert(unique_value(NodeId(node), seq)));
            }
        }
    }

    #[test]
    fn ops_for_is_deterministic_and_per_node() {
        let spec = WorkloadSpec::default();
        assert_eq!(spec.ops_for(NodeId(0)), spec.ops_for(NodeId(0)));
        assert_ne!(
            spec.ops_for(NodeId(0)),
            spec.ops_for(NodeId(1)),
            "different nodes draw different sequences"
        );
        assert_eq!(spec.ops_for(NodeId(2)).len(), spec.ops_per_node);
    }

    #[test]
    fn ops_respect_think_range_and_ratio_extremes() {
        let all_writes = WorkloadSpec {
            write_ratio: 1.0,
            think: (10, 20),
            ..WorkloadSpec::default()
        };
        for (think, op) in all_writes.ops_for(NodeId(1)) {
            assert!((10..=20).contains(&think));
            assert!(matches!(op, SnapshotOp::Write(_)));
        }
        let all_snaps = WorkloadSpec {
            write_ratio: 0.0,
            ..WorkloadSpec::default()
        };
        assert!(all_snaps
            .ops_for(NodeId(1))
            .iter()
            .all(|(_, op)| matches!(op, SnapshotOp::Snapshot)));
    }

    #[test]
    fn write_sequences_restart_per_node_but_values_stay_unique() {
        let spec = WorkloadSpec {
            write_ratio: 1.0,
            ..WorkloadSpec::default()
        };
        let mut seen = std::collections::HashSet::new();
        for node in 0..4 {
            for (_, op) in spec.ops_for(NodeId(node)) {
                let SnapshotOp::Write(v) = op else {
                    unreachable!()
                };
                assert!(seen.insert(v));
            }
        }
    }
}
