//! The shared fault plane: one link/scenario model consumed by **both**
//! execution backends (the deterministic simulator `sss-sim` and the
//! threaded runtime `sss-runtime`).
//!
//! The paper's claims — O(1) asynchronous-cycle recovery, gossip
//! cleanup, bounded-counter reset — are statements about behavior *under
//! faults*. They only mean something experimentally when the same
//! adversary can be replayed across execution models. This crate makes
//! that possible:
//!
//! * [`LinkModel`] — per-directed-link delay/loss/duplication/capacity
//!   decisions drawn from per-link seeded RNG streams, plus the
//!   link-down matrix used for partitions. Both backends route every
//!   send through [`LinkModel::on_send`] and account drops identically.
//! * [`FaultPlan`] — a declarative, time-ordered schedule of crashes,
//!   resumes, detectable restarts, transient corruptions, group-based
//!   partitions, heals and single-link cuts. Times are in **model
//!   microseconds**; the simulator interprets them as virtual time, the
//!   threaded runtime scales them onto the wall clock.
//! * [`Backend`] — `run_traced(plan, workload, tracer) -> RunReport`:
//!   the interface experiment bins use to replay one scenario on either
//!   backend, with structured `sss_obs` trace events emitted along the
//!   way (or [`Backend::run`] for an untraced run).
//!
//! Corruption is seeded *by the plan* ([`FaultPlan::corruption_seed`]),
//! so the "arbitrary" post-fault state is identical across backends.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod byz;
mod link;
mod plan;

pub use backend::{
    unique_value, Backend, BatchPolicy, NodeProbe, RunReport, RunStats, WorkloadSpec,
};
pub use byz::{ByzPlane, ByzState};
pub use link::{cut_matrix, DropReason, LinkConfig, LinkModel, LinkVerdict};
pub use plan::{FaultEvent, FaultPlan, PlanError};
pub use sss_types::ByzBehavior;

/// SplitMix64-style seed mixing: derives an independent, well-distributed
/// sub-seed from `(seed, salt)`. This is the one hash every seeded
/// component in the workspace derives its sub-streams from — per-link
/// RNG streams, per-node workload sequences, per-shard cluster seeds and
/// the service layer's consistent-hash ring all agree on it, so a
/// scenario seed means the same thing everywhere.
pub fn mix64(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Model time, in microseconds. Identical to `sss_sim::SimTime`; the
/// threaded runtime maps it onto the wall clock via its round interval.
pub type ModelTime = u64;

/// The round interval, in model microseconds, that [`FaultPlan`] times
/// are calibrated against (the simulator's `SimConfig::small` interval).
/// A backend whose real round interval differs scales plan times by
/// `real_interval / MODEL_ROUND_US`.
pub const MODEL_ROUND_US: u64 = 100;
