//! The Byzantine message-rewrite hook shared by every backend.
//!
//! A Byzantine node in this fault model is *compromised but scripted*: it
//! still runs the protocol state machine, but everything it sends passes
//! through a seeded per-destination rewrite driven by
//! [`ByzBehavior`] — equivocation, stale replay, or index inflation. The
//! hook sits on the **sender side**, after the protocol produced its
//! effects and before the link model rules on delivery, which is the one
//! place all three backends (simulator, threads, sockets) share: each
//! drains `Effects::drain_sends` through [`ByzPlane::rewrite`] and
//! forwards whatever comes back.
//!
//! Determinism: each `(node, behavior)` activation gets its own `StdRng`
//! seeded from the plan seed via [`crate::mix64`], so the same plan
//! replayed on any backend produces the same lies in the same order.

use crate::mix64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sss_types::{ByzBehavior, NodeId, ProtoMsg, INFLATED_INDEX};
use std::collections::VecDeque;

/// How many of its own outgoing messages a replaying node remembers.
/// Old enough captures cross reset (epoch) boundaries in practice while
/// keeping the ring bounded.
const CAPTURE_RING: usize = 64;

/// One node's active Byzantine mode: the scripted behaviour plus the
/// seeded randomness and capture ring that drive it.
#[derive(Debug)]
pub struct ByzState<M> {
    behavior: ByzBehavior,
    rng: StdRng,
    /// Ring of this node's own past outgoing messages (destination kept
    /// so replays go where the original went — a lie that still parses).
    captured: VecDeque<(NodeId, M)>,
}

impl<M: ProtoMsg> ByzState<M> {
    /// A fresh state for `node` adopting `behavior`, seeded from the
    /// plan seed (deterministic across backends).
    pub fn new(node: NodeId, behavior: ByzBehavior, plan_seed: u64) -> Self {
        ByzState {
            behavior,
            rng: StdRng::seed_from_u64(mix64(
                plan_seed,
                0xB12A_17E5_0000_0000u64.wrapping_add(node.index() as u64),
            )),
            captured: VecDeque::with_capacity(CAPTURE_RING),
        }
    }

    /// The scripted behaviour.
    pub fn behavior(&self) -> ByzBehavior {
        self.behavior
    }

    /// Rewrites one outgoing message according to the scripted
    /// behaviour. Returns the message to actually put on the wire (the
    /// original if the behaviour has nothing to say about this kind).
    pub fn rewrite(&mut self, to: NodeId, msg: M) -> M {
        match self.behavior {
            ByzBehavior::Honest => msg,
            ByzBehavior::Equivocate => {
                // Fresh perturbation per destination: receivers p_j and
                // p_k get *different* values for the same logical update.
                let _ = to;
                msg.equivocate(&mut self.rng).unwrap_or(msg)
            }
            ByzBehavior::InflateIndex => msg.inflate_index(INFLATED_INDEX).unwrap_or(msg),
            ByzBehavior::ReplayStale => {
                // Capture everything; half the time, substitute the
                // oldest capture for the fresh message — re-injecting
                // pre-reset traffic across whatever epoch boundary has
                // passed since.
                if self.captured.len() == CAPTURE_RING {
                    self.captured.pop_front();
                }
                self.captured.push_back((to, msg.clone()));
                if self.rng.gen_bool(0.5) {
                    if let Some((_, old)) = self.captured.front() {
                        return old.clone();
                    }
                }
                msg
            }
        }
    }
}

/// The per-cluster Byzantine plane: which nodes are currently lying and
/// how. Backends consult it on every outgoing message.
#[derive(Debug)]
pub struct ByzPlane<M> {
    nodes: Vec<Option<ByzState<M>>>,
    plan_seed: u64,
    active: usize,
}

impl<M: ProtoMsg> ByzPlane<M> {
    /// An all-honest plane for an `n`-node cluster.
    pub fn new(n: usize, plan_seed: u64) -> Self {
        ByzPlane {
            nodes: (0..n).map(|_| None).collect(),
            plan_seed,
            active: 0,
        }
    }

    /// Applies a `FaultEvent::Byzantine { node, behavior }`:
    /// [`ByzBehavior::Honest`] clears the node's mode, anything else
    /// (re-)arms it with a fresh seeded state.
    pub fn set(&mut self, node: NodeId, behavior: ByzBehavior) {
        let slot = &mut self.nodes[node.index()];
        if behavior == ByzBehavior::Honest {
            if slot.take().is_some() {
                self.active -= 1;
            }
        } else {
            if slot.is_none() {
                self.active += 1;
            }
            *slot = Some(ByzState::new(node, behavior, self.plan_seed));
        }
    }

    /// Whether `node` is currently Byzantine.
    pub fn is_byzantine(&self, node: NodeId) -> bool {
        self.nodes[node.index()].is_some()
    }

    /// Whether any node is currently Byzantine (lets the hot path skip
    /// the per-message check entirely in the common all-honest case).
    pub fn any(&self) -> bool {
        self.active > 0
    }

    /// Rewrites `from`'s outgoing `msg` to `to` if `from` is Byzantine;
    /// passes it through untouched otherwise. Self-deliveries are never
    /// rewritten — a node cannot lie to itself about its own state.
    pub fn rewrite(&mut self, from: NodeId, to: NodeId, msg: M) -> M {
        if from == to {
            return msg;
        }
        match &mut self.nodes[from.index()] {
            Some(state) => state.rewrite(to, msg),
            None => msg,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sss_types::{cell_bits, MsgKind};

    #[derive(Clone, Debug, PartialEq)]
    struct Cell {
        ts: u64,
        val: u64,
    }
    impl ProtoMsg for Cell {
        fn kind(&self) -> MsgKind {
            MsgKind::Gossip
        }
        fn size_bits(&self, nu: u32) -> u64 {
            64 + cell_bits(nu)
        }
        fn equivocate(&self, rng: &mut dyn rand::RngCore) -> Option<Self> {
            Some(Cell {
                ts: self.ts,
                val: rng.next_u64(),
            })
        }
        fn inflate_index(&self, floor: u64) -> Option<Self> {
            Some(Cell {
                ts: self.ts.max(floor),
                val: self.val,
            })
        }
    }

    #[test]
    fn honest_nodes_pass_through_untouched() {
        let mut plane: ByzPlane<Cell> = ByzPlane::new(3, 7);
        assert!(!plane.any());
        let m = Cell { ts: 5, val: 10 };
        assert_eq!(plane.rewrite(NodeId(0), NodeId(1), m.clone()), m);
    }

    #[test]
    fn equivocation_gives_different_peers_different_values() {
        let mut plane: ByzPlane<Cell> = ByzPlane::new(3, 7);
        plane.set(NodeId(0), ByzBehavior::Equivocate);
        assert!(plane.any() && plane.is_byzantine(NodeId(0)));
        let m = Cell { ts: 5, val: 10 };
        let to1 = plane.rewrite(NodeId(0), NodeId(1), m.clone());
        let to2 = plane.rewrite(NodeId(0), NodeId(2), m.clone());
        assert_eq!(to1.ts, m.ts, "equivocation perturbs values, not shape");
        assert_ne!(to1.val, to2.val, "different peers hear different lies");
        // Non-byzantine senders are unaffected.
        assert_eq!(plane.rewrite(NodeId(1), NodeId(0), m.clone()), m);
        // Self-delivery is never rewritten.
        assert_eq!(plane.rewrite(NodeId(0), NodeId(0), m.clone()), m);
    }

    #[test]
    fn inflation_jumps_indices_to_the_floor() {
        let mut plane: ByzPlane<Cell> = ByzPlane::new(2, 7);
        plane.set(NodeId(0), ByzBehavior::InflateIndex);
        let out = plane.rewrite(NodeId(0), NodeId(1), Cell { ts: 5, val: 10 });
        assert_eq!(out.ts, INFLATED_INDEX);
        assert_eq!(out.val, 10);
    }

    #[test]
    fn replay_substitutes_stale_captures_deterministically() {
        let run = |seed: u64| {
            let mut plane: ByzPlane<Cell> = ByzPlane::new(2, seed);
            plane.set(NodeId(0), ByzBehavior::ReplayStale);
            (0..200)
                .map(|i| {
                    plane
                        .rewrite(NodeId(0), NodeId(1), Cell { ts: i, val: i })
                        .ts
                })
                .collect::<Vec<_>>()
        };
        let a = run(7);
        assert_eq!(a, run(7), "same plan seed, same lies");
        assert!(
            a.iter().enumerate().any(|(i, ts)| *ts != i as u64),
            "some messages must be stale replays"
        );
        assert!(
            a.iter().enumerate().any(|(i, ts)| *ts == i as u64),
            "some messages still go out fresh"
        );
    }

    #[test]
    fn honest_event_clears_the_mode() {
        let mut plane: ByzPlane<Cell> = ByzPlane::new(2, 7);
        plane.set(NodeId(1), ByzBehavior::InflateIndex);
        plane.set(NodeId(1), ByzBehavior::Honest);
        assert!(!plane.any());
        let m = Cell { ts: 5, val: 10 };
        assert_eq!(plane.rewrite(NodeId(1), NodeId(0), m.clone()), m);
    }
}
