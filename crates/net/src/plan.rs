//! Declarative fault schedules replayable on any backend.

use crate::ModelTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sss_obs::JsonValue;
use sss_types::{ByzBehavior, NodeId};

/// One fault event in a [`FaultPlan`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// Crash (stop taking steps, undetectably).
    Crash(NodeId),
    /// Resume with state intact.
    Resume(NodeId),
    /// Detectable restart (variables re-initialized; also clears a crash).
    Restart(NodeId),
    /// Transient fault (state arbitrarily corrupted). The corruption
    /// randomness is seeded by the plan — see
    /// [`FaultPlan::corruption_seed`] — so both backends produce the
    /// same "arbitrary" state.
    Corrupt(NodeId),
    /// Group-based partition: links across groups cut, links within a
    /// group restored, ungrouped nodes isolated (see
    /// [`crate::cut_matrix`]).
    Partition(Vec<Vec<NodeId>>),
    /// Restore every link.
    Heal,
    /// Cut (`up = false`) or restore one directed link.
    SetLink {
        /// Sender side of the link.
        from: NodeId,
        /// Receiver side of the link.
        to: NodeId,
        /// `true` restores the link, `false` cuts it.
        up: bool,
    },
    /// Turn a node Byzantine (or honest again with
    /// [`ByzBehavior::Honest`]): its outgoing messages pass through a
    /// seeded per-link rewrite hook — equivocation, stale replay, or
    /// index inflation — so all backends inherit the same adversary
    /// unchanged.
    Byzantine {
        /// The lying node.
        node: NodeId,
        /// What kind of lies it tells.
        behavior: ByzBehavior,
    },
}

/// Why [`FaultPlan::validate`] rejected a schedule.
///
/// Both backends validate a plan before replaying it, so a malformed
/// schedule fails loudly and identically everywhere instead of silently
/// meaning different things on different execution models.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// An event names a node index `>= n`.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// The event's scheduled time.
        at: ModelTime,
        /// The cluster size the plan was validated against.
        n: usize,
    },
    /// A `SetLink` names the same node on both ends (self-delivery never
    /// passes through the link model).
    SelfLink {
        /// The event's scheduled time.
        at: ModelTime,
    },
    /// A partition lists some node in more than one group (group
    /// membership must be a partial function).
    DuplicateGroupMember {
        /// The duplicated node.
        node: NodeId,
        /// The event's scheduled time.
        at: ModelTime,
    },
    /// `Crash` of a node that is already crashed.
    CrashWhileCrashed {
        /// The node.
        node: NodeId,
        /// The event's scheduled time.
        at: ModelTime,
    },
    /// `Resume` of a node that is not currently crashed.
    ResumeWithoutCrash {
        /// The node.
        node: NodeId,
        /// The event's scheduled time.
        at: ModelTime,
    },
    /// `Restart` of a node that never crashed earlier in the plan. A
    /// detectable restart models a node going down and coming back; a
    /// plan that wants to bounce a live node says so explicitly with a
    /// `Crash` immediately before the `Restart`.
    RestartWithoutCrash {
        /// The node.
        node: NodeId,
        /// The event's scheduled time.
        at: ModelTime,
    },
    /// Two link-matrix operations at the same timestamp whose combined
    /// effect depends on ordering: more than one `Partition`/`Heal`, a
    /// `Partition`/`Heal` mixed with a `SetLink`, or two `SetLink`s on
    /// the same directed link with opposite `up`.
    ConflictingLinkOps {
        /// The shared timestamp.
        at: ModelTime,
    },
    /// Two node-state operations (`Crash`/`Resume`/`Restart`/`Corrupt`)
    /// on the same node at the same timestamp — their outcome would
    /// depend on insertion order.
    ConflictingNodeOps {
        /// The node.
        node: NodeId,
        /// The shared timestamp.
        at: ModelTime,
    },
    /// The plan was constructed out of time order. Backends replay the
    /// stable time-sort, so an unsorted construction makes equal-time
    /// tie-breaking depend on insertion accidents; schedules must be
    /// built in non-decreasing time order.
    Unsorted {
        /// The first out-of-order time.
        at: ModelTime,
        /// The larger time constructed before it.
        after: ModelTime,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::NodeOutOfRange { node, at, n } => {
                write!(f, "event at t={at} names {node:?} but n={n}")
            }
            PlanError::SelfLink { at } => write!(f, "SetLink at t={at} has from == to"),
            PlanError::DuplicateGroupMember { node, at } => {
                write!(f, "partition at t={at} lists {node:?} in two groups")
            }
            PlanError::CrashWhileCrashed { node, at } => {
                write!(f, "Crash at t={at} of already-crashed {node:?}")
            }
            PlanError::ResumeWithoutCrash { node, at } => {
                write!(f, "Resume at t={at} of non-crashed {node:?}")
            }
            PlanError::RestartWithoutCrash { node, at } => {
                write!(f, "Restart at t={at} of never-crashed {node:?}")
            }
            PlanError::ConflictingLinkOps { at } => {
                write!(f, "order-dependent link operations at t={at}")
            }
            PlanError::ConflictingNodeOps { node, at } => {
                write!(f, "order-dependent operations on {node:?} at t={at}")
            }
            PlanError::Unsorted { at, after } => {
                write!(f, "event at t={at} constructed after an event at t={after}")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// A deterministic, time-ordered schedule of fault events, in model
/// microseconds. Built once, replayed on any [`crate::Backend`].
#[derive(Clone, Debug)]
pub struct FaultPlan {
    events: Vec<(ModelTime, FaultEvent)>,
    seed: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            events: Vec::new(),
            seed: 0x5EED_FA17,
        }
    }
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the plan seed (feeds corruption randomness; builder-style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The plan seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Adds an event at time `t` (builder-style).
    pub fn at(mut self, t: ModelTime, ev: FaultEvent) -> Self {
        self.events.push((t, ev));
        self
    }

    /// Crashes a random minority of nodes at `t`, returning the plan and
    /// the crashed set.
    pub fn crash_random_minority(
        mut self,
        n: usize,
        t: ModelTime,
        seed: u64,
    ) -> (Self, Vec<NodeId>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let f = (n - 1) / 2;
        let count = if f == 0 { 0 } else { rng.gen_range(1..=f) };
        let mut pool: Vec<usize> = (0..n).collect();
        let mut crashed = Vec::new();
        for _ in 0..count {
            let i = rng.gen_range(0..pool.len());
            let node = NodeId(pool.swap_remove(i));
            crashed.push(node);
            self.events.push((t, FaultEvent::Crash(node)));
        }
        (self, crashed)
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[(ModelTime, FaultEvent)] {
        &self.events
    }

    /// The events sorted by time (stable, so equal-time events keep
    /// insertion order) — the order backends replay them in. Only the
    /// (time, position) keys are sorted; the events themselves are
    /// borrowed, not cloned.
    pub fn sorted_events(&self) -> impl Iterator<Item = (ModelTime, &FaultEvent)> {
        let mut order: Vec<usize> = (0..self.events.len()).collect();
        order.sort_by_key(|&i| self.events[i].0);
        order.into_iter().map(|i| {
            let (t, ev) = &self.events[i];
            (*t, ev)
        })
    }

    /// The time of the last scheduled event (0 for an empty plan);
    /// backends use this to size run horizons.
    pub fn last_event_time(&self) -> ModelTime {
        self.events.iter().map(|(t, _)| *t).max().unwrap_or(0)
    }

    /// Builds the trace event recording one plan event's injection —
    /// both backends emit exactly this mapping, so fault records are
    /// identical across execution models.
    pub fn trace_event(ev: &FaultEvent) -> sss_obs::TraceEvent {
        use sss_obs::FaultKind;
        let (kind, node, peer) = match ev {
            FaultEvent::Crash(n) => (FaultKind::Crash, Some(*n), None),
            FaultEvent::Resume(n) => (FaultKind::Resume, Some(*n), None),
            FaultEvent::Restart(n) => (FaultKind::Restart, Some(*n), None),
            FaultEvent::Corrupt(n) => (FaultKind::Corrupt, Some(*n), None),
            FaultEvent::Partition(_) => (FaultKind::Partition, None, None),
            FaultEvent::Heal => (FaultKind::Heal, None, None),
            FaultEvent::SetLink { from, to, up } => (
                if *up {
                    FaultKind::LinkUp
                } else {
                    FaultKind::LinkDown
                },
                Some(*from),
                Some(*to),
            ),
            FaultEvent::Byzantine { node, behavior } => (
                if *behavior == ByzBehavior::Honest {
                    FaultKind::Honest
                } else {
                    FaultKind::Byzantine
                },
                Some(*node),
                None,
            ),
        };
        sss_obs::TraceEvent::Fault { kind, node, peer }
    }

    /// A plan from pre-built `(time, event)` pairs (the shrinker's and
    /// the JSON reader's constructor). Events must already be in
    /// non-decreasing time order — [`FaultPlan::validate`] rejects the
    /// plan otherwise.
    pub fn with_events(seed: u64, events: Vec<(ModelTime, FaultEvent)>) -> Self {
        FaultPlan { events, seed }
    }

    /// Checks the schedule is well-formed for an `n`-node cluster.
    ///
    /// Rejected shapes (see [`PlanError`]): node indices `>= n`,
    /// self-link cuts, duplicate partition-group membership, `Crash` of
    /// an already-crashed node, `Resume` of a non-crashed node,
    /// `Restart` of a never-crashed node, order-dependent same-timestamp
    /// combinations (two link-matrix writes; two node-state events on
    /// one node), and out-of-time-order construction.
    ///
    /// Both backends call this before replaying a plan, and the chaos
    /// generators only emit plans that pass it.
    ///
    /// # Errors
    ///
    /// The first [`PlanError`] encountered, in schedule order.
    pub fn validate(&self, n: usize) -> Result<(), PlanError> {
        let mut crashed = vec![false; n];
        let mut ever_crashed = vec![false; n];
        let mut prev_t: ModelTime = 0;
        let node_ok = |node: &NodeId, at: ModelTime| {
            if node.index() >= n {
                Err(PlanError::NodeOutOfRange { node: *node, at, n })
            } else {
                Ok(())
            }
        };
        // Per-timestamp conflict scratch, reset at each time boundary.
        let mut grp_t: ModelTime = 0;
        let mut matrix_ops = 0usize; // Partition / Heal
        let mut set_links: Vec<(NodeId, NodeId, bool)> = Vec::new();
        let mut node_ops: Vec<NodeId> = Vec::new(); // Crash/Resume/Restart/Corrupt targets
        for (i, (t, ev)) in self.events.iter().enumerate() {
            if *t < prev_t {
                return Err(PlanError::Unsorted {
                    at: *t,
                    after: prev_t,
                });
            }
            prev_t = *t;
            if i == 0 || *t != grp_t {
                grp_t = *t;
                matrix_ops = 0;
                set_links.clear();
                node_ops.clear();
            }
            match ev {
                FaultEvent::Crash(node) => {
                    node_ok(node, *t)?;
                    if crashed[node.index()] {
                        return Err(PlanError::CrashWhileCrashed {
                            node: *node,
                            at: *t,
                        });
                    }
                    if node_ops.contains(node) {
                        return Err(PlanError::ConflictingNodeOps {
                            node: *node,
                            at: *t,
                        });
                    }
                    node_ops.push(*node);
                    crashed[node.index()] = true;
                    ever_crashed[node.index()] = true;
                }
                FaultEvent::Resume(node) => {
                    node_ok(node, *t)?;
                    if !crashed[node.index()] {
                        return Err(PlanError::ResumeWithoutCrash {
                            node: *node,
                            at: *t,
                        });
                    }
                    if node_ops.contains(node) {
                        return Err(PlanError::ConflictingNodeOps {
                            node: *node,
                            at: *t,
                        });
                    }
                    node_ops.push(*node);
                    crashed[node.index()] = false;
                }
                FaultEvent::Restart(node) => {
                    node_ok(node, *t)?;
                    if !ever_crashed[node.index()] {
                        return Err(PlanError::RestartWithoutCrash {
                            node: *node,
                            at: *t,
                        });
                    }
                    if node_ops.contains(node) {
                        return Err(PlanError::ConflictingNodeOps {
                            node: *node,
                            at: *t,
                        });
                    }
                    node_ops.push(*node);
                    crashed[node.index()] = false;
                }
                FaultEvent::Corrupt(node) => {
                    node_ok(node, *t)?;
                    if node_ops.contains(node) {
                        return Err(PlanError::ConflictingNodeOps {
                            node: *node,
                            at: *t,
                        });
                    }
                    node_ops.push(*node);
                }
                FaultEvent::Partition(groups) => {
                    let mut seen = vec![false; n];
                    for g in groups {
                        for m in g {
                            node_ok(m, *t)?;
                            if seen[m.index()] {
                                return Err(PlanError::DuplicateGroupMember { node: *m, at: *t });
                            }
                            seen[m.index()] = true;
                        }
                    }
                    matrix_ops += 1;
                    if matrix_ops > 1 || !set_links.is_empty() {
                        return Err(PlanError::ConflictingLinkOps { at: *t });
                    }
                }
                FaultEvent::Heal => {
                    matrix_ops += 1;
                    if matrix_ops > 1 || !set_links.is_empty() {
                        return Err(PlanError::ConflictingLinkOps { at: *t });
                    }
                }
                FaultEvent::Byzantine { node, .. } => {
                    node_ok(node, *t)?;
                    if node_ops.contains(node) {
                        return Err(PlanError::ConflictingNodeOps {
                            node: *node,
                            at: *t,
                        });
                    }
                    node_ops.push(*node);
                }
                FaultEvent::SetLink { from, to, up } => {
                    node_ok(from, *t)?;
                    node_ok(to, *t)?;
                    if from == to {
                        return Err(PlanError::SelfLink { at: *t });
                    }
                    if matrix_ops > 0
                        || set_links
                            .iter()
                            .any(|(f, g, u)| f == from && g == to && u != up)
                    {
                        return Err(PlanError::ConflictingLinkOps { at: *t });
                    }
                    set_links.push((*from, *to, *up));
                }
            }
        }
        Ok(())
    }

    /// Serializes the plan as a committable JSON document (events in
    /// replay order) — the fixture format the chaos engine's shrunk
    /// reproducers are stored in. [`FaultPlan::from_json`] inverts it.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{{\"seed\": {}, \"events\": [", self.seed));
        let mut first = true;
        for (t, ev) in self.sorted_events() {
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&event_json(t, ev));
        }
        out.push_str("]}");
        out
    }

    /// Reads a plan back from [`FaultPlan::to_json`]'s format.
    ///
    /// # Errors
    ///
    /// A descriptive message for malformed JSON or unknown event shapes
    /// (structural validity only — call [`FaultPlan::validate`] for
    /// schedule semantics).
    pub fn from_json(text: &str) -> Result<FaultPlan, String> {
        let doc = JsonValue::parse(text)?;
        let seed = doc
            .get("seed")
            .and_then(JsonValue::as_u64)
            .ok_or("plan: missing u64 'seed'")?;
        let mut events = Vec::new();
        for item in doc
            .get("events")
            .and_then(JsonValue::as_arr)
            .ok_or("plan: missing 'events' array")?
        {
            let t = item
                .get("t")
                .and_then(JsonValue::as_u64)
                .ok_or("event: missing u64 't'")?;
            let kind = item
                .get("kind")
                .and_then(JsonValue::as_str)
                .ok_or("event: missing 'kind'")?;
            let node = |key: &str| -> Result<NodeId, String> {
                item.get(key)
                    .and_then(JsonValue::as_u64)
                    .map(|u| NodeId(u as usize))
                    .ok_or_else(|| format!("event '{kind}': missing u64 '{key}'"))
            };
            let ev = match kind {
                "crash" => FaultEvent::Crash(node("node")?),
                "resume" => FaultEvent::Resume(node("node")?),
                "restart" => FaultEvent::Restart(node("node")?),
                "corrupt" => FaultEvent::Corrupt(node("node")?),
                "heal" => FaultEvent::Heal,
                "set_link" => FaultEvent::SetLink {
                    from: node("from")?,
                    to: node("to")?,
                    up: item
                        .get("up")
                        .and_then(JsonValue::as_bool)
                        .ok_or("set_link: missing bool 'up'")?,
                },
                "partition" => {
                    let groups = item
                        .get("groups")
                        .and_then(JsonValue::as_arr)
                        .ok_or("partition: missing 'groups'")?
                        .iter()
                        .map(|g| {
                            g.as_arr()
                                .ok_or("partition: group is not an array")?
                                .iter()
                                .map(|m| {
                                    m.as_u64()
                                        .map(|u| NodeId(u as usize))
                                        .ok_or("partition: non-integer member".to_string())
                                })
                                .collect::<Result<Vec<_>, _>>()
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    FaultEvent::Partition(groups)
                }
                "byzantine" => {
                    let name = item
                        .get("behavior")
                        .and_then(JsonValue::as_str)
                        .ok_or("byzantine: missing 'behavior'")?;
                    FaultEvent::Byzantine {
                        node: node("node")?,
                        behavior: ByzBehavior::from_name(name)
                            .ok_or_else(|| format!("byzantine: unknown behavior '{name}'"))?,
                    }
                }
                other => return Err(format!("unknown event kind '{other}'")),
            };
            events.push((t, ev));
        }
        Ok(FaultPlan { events, seed })
    }

    /// The RNG seed for the corruption injected at `(t, node)`: a pure
    /// function of the plan seed, so every backend corrupts the node
    /// into the same "arbitrary" state.
    pub fn corruption_seed(&self, t: ModelTime, node: NodeId) -> u64 {
        let mut h = self.seed ^ 0xcbf2_9ce4_8422_2325;
        for x in [t, node.index() as u64] {
            h = (h ^ x).wrapping_mul(0x100_0000_01b3);
        }
        h
    }
}

/// One event as a JSON object, `kind` labels matching
/// `sss_obs::FaultKind::label` where both exist.
fn event_json(t: ModelTime, ev: &FaultEvent) -> String {
    match ev {
        FaultEvent::Crash(n) => format!(
            "{{\"t\": {t}, \"kind\": \"crash\", \"node\": {}}}",
            n.index()
        ),
        FaultEvent::Resume(n) => {
            format!(
                "{{\"t\": {t}, \"kind\": \"resume\", \"node\": {}}}",
                n.index()
            )
        }
        FaultEvent::Restart(n) => {
            format!(
                "{{\"t\": {t}, \"kind\": \"restart\", \"node\": {}}}",
                n.index()
            )
        }
        FaultEvent::Corrupt(n) => {
            format!(
                "{{\"t\": {t}, \"kind\": \"corrupt\", \"node\": {}}}",
                n.index()
            )
        }
        FaultEvent::Heal => format!("{{\"t\": {t}, \"kind\": \"heal\"}}"),
        FaultEvent::SetLink { from, to, up } => format!(
            "{{\"t\": {t}, \"kind\": \"set_link\", \"from\": {}, \"to\": {}, \"up\": {up}}}",
            from.index(),
            to.index()
        ),
        FaultEvent::Byzantine { node, behavior } => format!(
            "{{\"t\": {t}, \"kind\": \"byzantine\", \"node\": {}, \"behavior\": \"{}\"}}",
            node.index(),
            behavior.name()
        ),
        FaultEvent::Partition(groups) => {
            let gs = groups
                .iter()
                .map(|g| {
                    let ms = g
                        .iter()
                        .map(|m| m.index().to_string())
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!("[{ms}]")
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!("{{\"t\": {t}, \"kind\": \"partition\", \"groups\": [{gs}]}}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_orders_and_sorts() {
        let plan = FaultPlan::new()
            .at(500, FaultEvent::Heal)
            .at(100, FaultEvent::Crash(NodeId(1)))
            .at(500, FaultEvent::Resume(NodeId(1)));
        let sorted: Vec<_> = plan.sorted_events().collect();
        assert_eq!(sorted[0], (100, &FaultEvent::Crash(NodeId(1))));
        // Stable sort: equal-time events keep insertion order.
        assert_eq!(sorted[1], (500, &FaultEvent::Heal));
        assert_eq!(sorted[2], (500, &FaultEvent::Resume(NodeId(1))));
        assert_eq!(plan.last_event_time(), 500);
    }

    #[test]
    fn minority_crash_is_bounded_and_seeded() {
        let (_, a) = FaultPlan::new().crash_random_minority(5, 100, 42);
        let (_, b) = FaultPlan::new().crash_random_minority(5, 100, 42);
        assert_eq!(a, b, "same seed, same victims");
        assert!(!a.is_empty() && a.len() <= 2);
        let (_, none) = FaultPlan::new().crash_random_minority(1, 100, 42);
        assert!(none.is_empty(), "n = 1 has no crashable minority");
    }

    #[test]
    fn corruption_seed_is_stable_and_distinct() {
        let plan = FaultPlan::new().with_seed(7);
        assert_eq!(
            plan.corruption_seed(100, NodeId(2)),
            plan.corruption_seed(100, NodeId(2))
        );
        assert_ne!(
            plan.corruption_seed(100, NodeId(2)),
            plan.corruption_seed(100, NodeId(3))
        );
        assert_ne!(
            plan.corruption_seed(100, NodeId(2)),
            plan.corruption_seed(200, NodeId(2))
        );
        assert_ne!(
            plan.corruption_seed(100, NodeId(2)),
            FaultPlan::new()
                .with_seed(8)
                .corruption_seed(100, NodeId(2))
        );
    }

    #[test]
    fn validate_accepts_well_formed_schedules() {
        let plan = FaultPlan::new()
            .at(1_000, FaultEvent::Crash(NodeId(1)))
            .at(2_000, FaultEvent::Corrupt(NodeId(0)))
            .at(
                3_000,
                FaultEvent::Partition(vec![vec![NodeId(0), NodeId(2)], vec![NodeId(1)]]),
            )
            .at(
                4_000,
                FaultEvent::SetLink {
                    from: NodeId(0),
                    to: NodeId(2),
                    up: false,
                },
            )
            .at(5_000, FaultEvent::Heal)
            .at(6_000, FaultEvent::Restart(NodeId(1)))
            .at(6_500, FaultEvent::Crash(NodeId(1)))
            .at(7_000, FaultEvent::Resume(NodeId(1)));
        assert_eq!(plan.validate(3), Ok(()));
    }

    #[test]
    fn validate_rejects_malformed_schedules() {
        let n = 3;
        let bad = |plan: FaultPlan| plan.validate(n).unwrap_err();
        assert!(matches!(
            bad(FaultPlan::new().at(1, FaultEvent::Crash(NodeId(3)))),
            PlanError::NodeOutOfRange { .. }
        ));
        assert!(matches!(
            bad(FaultPlan::new().at(1, FaultEvent::Resume(NodeId(0)))),
            PlanError::ResumeWithoutCrash { .. }
        ));
        assert!(matches!(
            bad(FaultPlan::new().at(1, FaultEvent::Restart(NodeId(0)))),
            PlanError::RestartWithoutCrash { .. }
        ));
        assert!(matches!(
            bad(FaultPlan::new()
                .at(1, FaultEvent::Crash(NodeId(0)))
                .at(2, FaultEvent::Crash(NodeId(0)))),
            PlanError::CrashWhileCrashed { .. }
        ));
        // A resumed node may crash again, and a restart clears a crash.
        assert_eq!(
            FaultPlan::new()
                .at(1, FaultEvent::Crash(NodeId(0)))
                .at(2, FaultEvent::Restart(NodeId(0)))
                .at(3, FaultEvent::Crash(NodeId(0)))
                .validate(n),
            Ok(())
        );
        assert!(matches!(
            bad(FaultPlan::new().at(
                1,
                FaultEvent::SetLink {
                    from: NodeId(1),
                    to: NodeId(1),
                    up: false
                }
            )),
            PlanError::SelfLink { .. }
        ));
        assert!(matches!(
            bad(FaultPlan::new().at(
                1,
                FaultEvent::Partition(vec![vec![NodeId(0), NodeId(1)], vec![NodeId(1)]])
            )),
            PlanError::DuplicateGroupMember { .. }
        ));
        assert!(matches!(
            bad(FaultPlan::new()
                .at(5, FaultEvent::Heal)
                .at(1, FaultEvent::Crash(NodeId(0)))),
            PlanError::Unsorted { .. }
        ));
    }

    #[test]
    fn validate_rejects_same_timestamp_conflicts() {
        let n = 3;
        let bad = |plan: FaultPlan| plan.validate(n).unwrap_err();
        // Two matrix writes at one instant.
        assert!(matches!(
            bad(FaultPlan::new()
                .at(1, FaultEvent::Partition(vec![vec![NodeId(0)]]))
                .at(1, FaultEvent::Heal)),
            PlanError::ConflictingLinkOps { at: 1 }
        ));
        // Matrix write mixed with a single-link write.
        assert!(matches!(
            bad(FaultPlan::new().at(1, FaultEvent::Heal).at(
                1,
                FaultEvent::SetLink {
                    from: NodeId(0),
                    to: NodeId(1),
                    up: false
                }
            )),
            PlanError::ConflictingLinkOps { at: 1 }
        ));
        // Opposite verdicts for one directed link.
        let cut = |up| FaultEvent::SetLink {
            from: NodeId(0),
            to: NodeId(1),
            up,
        };
        assert!(matches!(
            bad(FaultPlan::new().at(1, cut(false)).at(1, cut(true))),
            PlanError::ConflictingLinkOps { at: 1 }
        ));
        // Identical SetLinks are merely redundant, not conflicting.
        assert_eq!(
            FaultPlan::new()
                .at(1, cut(false))
                .at(1, cut(false))
                .validate(n),
            Ok(())
        );
        // Crash + Resume of one node at one instant.
        assert!(matches!(
            bad(FaultPlan::new()
                .at(1, FaultEvent::Crash(NodeId(2)))
                .at(1, FaultEvent::Resume(NodeId(2)))),
            PlanError::ConflictingNodeOps { .. }
        ));
        // Same timestamp on *different* nodes is fine (crash_random_minority).
        let (plan, crashed) = FaultPlan::new().crash_random_minority(5, 100, 42);
        assert!(!crashed.is_empty());
        assert_eq!(plan.validate(5), Ok(()));
    }

    #[test]
    fn json_round_trips_every_event_kind() {
        let plan = FaultPlan::new()
            .with_seed(u64::MAX - 7)
            .at(100, FaultEvent::Crash(NodeId(1)))
            .at(200, FaultEvent::Corrupt(NodeId(2)))
            .at(
                300,
                FaultEvent::Partition(vec![vec![NodeId(0), NodeId(1)], vec![NodeId(2)]]),
            )
            .at(
                400,
                FaultEvent::SetLink {
                    from: NodeId(2),
                    to: NodeId(0),
                    up: true,
                },
            )
            .at(500, FaultEvent::Heal)
            .at(600, FaultEvent::Restart(NodeId(1)))
            .at(700, FaultEvent::Resume(NodeId(2)))
            .at(
                800,
                FaultEvent::Byzantine {
                    node: NodeId(0),
                    behavior: ByzBehavior::Equivocate,
                },
            )
            .at(
                900,
                FaultEvent::Byzantine {
                    node: NodeId(0),
                    behavior: ByzBehavior::Honest,
                },
            );
        let text = plan.to_json();
        let back = FaultPlan::from_json(&text).expect("parse back");
        assert_eq!(back.seed(), plan.seed());
        assert_eq!(back.events(), plan.events());
        // Serialization is in replay order, so a second trip is identical.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        assert!(FaultPlan::from_json("{}").is_err());
        assert!(FaultPlan::from_json("{\"seed\": 1}").is_err());
        assert!(FaultPlan::from_json(
            "{\"seed\": 1, \"events\": [{\"t\": 5, \"kind\": \"explode\"}]}"
        )
        .is_err());
        assert!(FaultPlan::from_json("{\"seed\": 1, \"events\": [{\"kind\": \"heal\"}]}").is_err());
    }

    #[test]
    fn partition_event_carries_groups() {
        let plan = FaultPlan::new().at(
            50,
            FaultEvent::Partition(vec![vec![NodeId(0), NodeId(1)], vec![NodeId(2)]]),
        );
        match &plan.events()[0].1 {
            FaultEvent::Partition(groups) => {
                assert_eq!(groups.len(), 2);
                assert_eq!(groups[0], vec![NodeId(0), NodeId(1)]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
