//! Declarative fault schedules replayable on any backend.

use crate::ModelTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sss_types::NodeId;

/// One fault event in a [`FaultPlan`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// Crash (stop taking steps, undetectably).
    Crash(NodeId),
    /// Resume with state intact.
    Resume(NodeId),
    /// Detectable restart (variables re-initialized; also clears a crash).
    Restart(NodeId),
    /// Transient fault (state arbitrarily corrupted). The corruption
    /// randomness is seeded by the plan — see
    /// [`FaultPlan::corruption_seed`] — so both backends produce the
    /// same "arbitrary" state.
    Corrupt(NodeId),
    /// Group-based partition: links across groups cut, links within a
    /// group restored, ungrouped nodes isolated (see
    /// [`crate::cut_matrix`]).
    Partition(Vec<Vec<NodeId>>),
    /// Restore every link.
    Heal,
    /// Cut (`up = false`) or restore one directed link.
    SetLink {
        /// Sender side of the link.
        from: NodeId,
        /// Receiver side of the link.
        to: NodeId,
        /// `true` restores the link, `false` cuts it.
        up: bool,
    },
}

/// A deterministic, time-ordered schedule of fault events, in model
/// microseconds. Built once, replayed on any [`crate::Backend`].
#[derive(Clone, Debug)]
pub struct FaultPlan {
    events: Vec<(ModelTime, FaultEvent)>,
    seed: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            events: Vec::new(),
            seed: 0x5EED_FA17,
        }
    }
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the plan seed (feeds corruption randomness; builder-style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The plan seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Adds an event at time `t` (builder-style).
    pub fn at(mut self, t: ModelTime, ev: FaultEvent) -> Self {
        self.events.push((t, ev));
        self
    }

    /// Crashes a random minority of nodes at `t`, returning the plan and
    /// the crashed set.
    pub fn crash_random_minority(
        mut self,
        n: usize,
        t: ModelTime,
        seed: u64,
    ) -> (Self, Vec<NodeId>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let f = (n - 1) / 2;
        let count = if f == 0 { 0 } else { rng.gen_range(1..=f) };
        let mut pool: Vec<usize> = (0..n).collect();
        let mut crashed = Vec::new();
        for _ in 0..count {
            let i = rng.gen_range(0..pool.len());
            let node = NodeId(pool.swap_remove(i));
            crashed.push(node);
            self.events.push((t, FaultEvent::Crash(node)));
        }
        (self, crashed)
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[(ModelTime, FaultEvent)] {
        &self.events
    }

    /// The events sorted by time (stable, so equal-time events keep
    /// insertion order) — the order backends replay them in. Only the
    /// (time, position) keys are sorted; the events themselves are
    /// borrowed, not cloned.
    pub fn sorted_events(&self) -> impl Iterator<Item = (ModelTime, &FaultEvent)> {
        let mut order: Vec<usize> = (0..self.events.len()).collect();
        order.sort_by_key(|&i| self.events[i].0);
        order.into_iter().map(|i| {
            let (t, ev) = &self.events[i];
            (*t, ev)
        })
    }

    /// The time of the last scheduled event (0 for an empty plan);
    /// backends use this to size run horizons.
    pub fn last_event_time(&self) -> ModelTime {
        self.events.iter().map(|(t, _)| *t).max().unwrap_or(0)
    }

    /// Builds the trace event recording one plan event's injection —
    /// both backends emit exactly this mapping, so fault records are
    /// identical across execution models.
    pub fn trace_event(ev: &FaultEvent) -> sss_obs::TraceEvent {
        use sss_obs::FaultKind;
        let (kind, node, peer) = match ev {
            FaultEvent::Crash(n) => (FaultKind::Crash, Some(*n), None),
            FaultEvent::Resume(n) => (FaultKind::Resume, Some(*n), None),
            FaultEvent::Restart(n) => (FaultKind::Restart, Some(*n), None),
            FaultEvent::Corrupt(n) => (FaultKind::Corrupt, Some(*n), None),
            FaultEvent::Partition(_) => (FaultKind::Partition, None, None),
            FaultEvent::Heal => (FaultKind::Heal, None, None),
            FaultEvent::SetLink { from, to, up } => (
                if *up {
                    FaultKind::LinkUp
                } else {
                    FaultKind::LinkDown
                },
                Some(*from),
                Some(*to),
            ),
        };
        sss_obs::TraceEvent::Fault { kind, node, peer }
    }

    /// The RNG seed for the corruption injected at `(t, node)`: a pure
    /// function of the plan seed, so every backend corrupts the node
    /// into the same "arbitrary" state.
    pub fn corruption_seed(&self, t: ModelTime, node: NodeId) -> u64 {
        let mut h = self.seed ^ 0xcbf2_9ce4_8422_2325;
        for x in [t, node.index() as u64] {
            h = (h ^ x).wrapping_mul(0x100_0000_01b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_orders_and_sorts() {
        let plan = FaultPlan::new()
            .at(500, FaultEvent::Heal)
            .at(100, FaultEvent::Crash(NodeId(1)))
            .at(500, FaultEvent::Resume(NodeId(1)));
        let sorted: Vec<_> = plan.sorted_events().collect();
        assert_eq!(sorted[0], (100, &FaultEvent::Crash(NodeId(1))));
        // Stable sort: equal-time events keep insertion order.
        assert_eq!(sorted[1], (500, &FaultEvent::Heal));
        assert_eq!(sorted[2], (500, &FaultEvent::Resume(NodeId(1))));
        assert_eq!(plan.last_event_time(), 500);
    }

    #[test]
    fn minority_crash_is_bounded_and_seeded() {
        let (_, a) = FaultPlan::new().crash_random_minority(5, 100, 42);
        let (_, b) = FaultPlan::new().crash_random_minority(5, 100, 42);
        assert_eq!(a, b, "same seed, same victims");
        assert!(!a.is_empty() && a.len() <= 2);
        let (_, none) = FaultPlan::new().crash_random_minority(1, 100, 42);
        assert!(none.is_empty(), "n = 1 has no crashable minority");
    }

    #[test]
    fn corruption_seed_is_stable_and_distinct() {
        let plan = FaultPlan::new().with_seed(7);
        assert_eq!(
            plan.corruption_seed(100, NodeId(2)),
            plan.corruption_seed(100, NodeId(2))
        );
        assert_ne!(
            plan.corruption_seed(100, NodeId(2)),
            plan.corruption_seed(100, NodeId(3))
        );
        assert_ne!(
            plan.corruption_seed(100, NodeId(2)),
            plan.corruption_seed(200, NodeId(2))
        );
        assert_ne!(
            plan.corruption_seed(100, NodeId(2)),
            FaultPlan::new()
                .with_seed(8)
                .corruption_seed(100, NodeId(2))
        );
    }

    #[test]
    fn partition_event_carries_groups() {
        let plan = FaultPlan::new().at(
            50,
            FaultEvent::Partition(vec![vec![NodeId(0), NodeId(1)], vec![NodeId(2)]]),
        );
        match &plan.events()[0].1 {
            FaultEvent::Partition(groups) => {
                assert_eq!(groups.len(), 2);
                assert_eq!(groups[0], vec![NodeId(0), NodeId(1)]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
