//! Self-stabilizing snapshot objects for asynchronous failure-prone
//! networked systems.
//!
//! This crate implements the two algorithms contributed by Georgiou,
//! Lundström and Schiller (PODC 2019), plus the Section 5 bounded-counter
//! construction:
//!
//! * [`Alg1`] — the **self-stabilizing non-blocking** snapshot object
//!   (the paper's Algorithm 1). `write(v)` always terminates; `snapshot()`
//!   terminates once concurrent writes cease. Each operation costs `O(n)`
//!   messages of `O(ν·n)` bits; self-stabilization adds `O(n²)` gossip
//!   messages of `O(ν)` bits per asynchronous cycle and recovers from
//!   transient faults within `O(1)` cycles (Theorem 1).
//!
//! * [`Alg3`] — the **self-stabilizing always-terminating** snapshot
//!   object (the paper's Algorithm 3). Both operations always terminate.
//!   The input parameter `δ` trades snapshot latency against communication:
//!   with `δ = 0` every snapshot is helped by all nodes immediately
//!   (`O(n²)` messages, like Delporte-Gallet et al.'s Algorithm 2); with
//!   `δ > 0` a snapshot first runs alone (`O(n)` messages) and only after
//!   observing `δ` concurrent writes does it recruit all nodes and
//!   temporarily block writes — an `O(δ)`-cycle latency bound (Theorem 3).
//!
//! * [`Bounded`] — wraps either algorithm with the Section 5 construction:
//!   once any operation index reaches `MAXINT`, new operations are
//!   disabled, maximal indices are gossiped until they agree everywhere,
//!   and a consensus-based **global reset** wraps the counters while
//!   preserving register contents.
//!
//! All three implement [`sss_types::Protocol`] and run unchanged under the
//! deterministic simulator (`sss-sim`) and the threaded runtime
//! (`sss-runtime`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alg1;
mod alg3;
mod bounded;
mod reset;
mod wire_impls;

pub use alg1::{Alg1, Alg1Msg};
pub use alg3::{Alg3, Alg3Config, Alg3Msg, PndEntry, SaveEntry, TaskRef};
pub use bounded::{Bounded, BoundedConfig, BoundedMsg, HasIndices};
pub use reset::{ResetMsg, ResetState};
