//! The Section 5 bounded-counter construction: a wrapper that turns the
//! unbounded-index algorithms into bounded-space ones.
//!
//! Self-stabilization *requires* bounded state, so Section 5 prescribes:
//! once any operation index reaches `MAXINT`, (1) disable new operations,
//! (2) bring all nodes to agreement on the maximal indices and register
//! values, (3) run a consensus-based global reset that wraps every index
//! while keeping the register values, then re-enable operations. Because
//! a 64-bit counter can only reach `MAXINT` after a transient fault, the
//! reset runs *seldom*, and only it needs execution fairness
//! (the paper's "self-stabilization in the presence of seldom fairness").
//!
//! [`Bounded<P>`] implements this around any protocol implementing
//! [`HasIndices`] ([`Alg1`](crate::Alg1) and [`Alg3`](crate::Alg3) both
//! do):
//!
//! * every inner message travels inside an **epoch envelope**; messages
//!   from older epochs are discarded, so pre-reset timestamps cannot leak
//!   into the new epoch;
//! * operations invoked while a reset is in progress are **aborted** (the
//!   paper's criterion explicitly permits aborting a bounded number of
//!   operations during the seldom `R_globalReset` periods);
//! * the reset itself is coordinated by the lowest node id
//!   (see [`crate::reset`]).
//!
//! Caveat: an aborted write may still have *taken effect* — in particular
//! the write that pushed the index to `MAXINT` installs its value locally
//! before the node disables operations, and the reset's sync phase then
//! preserves that value. Clients must treat an abort as "outcome unknown"
//! (like a timeout), not as "did not happen".

use crate::reset::{ResetMsg, ResetState};
use rand::RngCore;
use sss_types::{
    reg_array_bits, ArbitraryMsg, Effects, MsgKind, NodeId, OpId, ProcessSet, ProtoMsg, Protocol,
    ProtocolStats, RegArray, SnapshotOp,
};

/// Extra capabilities [`Bounded`] needs from the wrapped protocol.
pub trait HasIndices: Protocol {
    /// The largest operation index anywhere in the local state (write
    /// indices, snapshot indices, register timestamps).
    fn max_index(&self) -> u64;

    /// The local register array (for the reset's sync phase).
    fn export_reg(&self) -> RegArray;

    /// Installs the canonical post-reset state: adopt `reg`, derive the
    /// own write index from it, zero all other indices, clear all
    /// in-progress phases.
    fn install_reset(&mut self, reg: RegArray);

    /// Removes all in-progress and queued client operations, returning
    /// their ids so the wrapper can abort them.
    fn drain_ops(&mut self) -> Vec<OpId>;
}

/// Configuration of [`Bounded`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BoundedConfig {
    /// The `MAXINT` threshold: reaching it triggers a global reset.
    /// Production would use ~`2^62`; tests use small values to exercise
    /// the wrap.
    pub max_int: u64,
}

impl Default for BoundedConfig {
    fn default() -> Self {
        BoundedConfig { max_int: 1 << 62 }
    }
}

/// Wire messages of [`Bounded`]: epoch-enveloped inner messages plus the
/// reset protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BoundedMsg<M> {
    /// An inner-protocol message valid in `epoch`.
    Inner {
        /// The sender's epoch.
        epoch: u64,
        /// The wrapped message.
        msg: M,
    },
    /// Global-reset traffic.
    Reset(ResetMsg),
}

impl<M: ProtoMsg> ProtoMsg for BoundedMsg<M> {
    fn kind(&self) -> MsgKind {
        match self {
            BoundedMsg::Inner { msg, .. } => msg.kind(),
            BoundedMsg::Reset(_) => MsgKind::Reset,
        }
    }

    fn size_bits(&self, nu: u32) -> u64 {
        match self {
            BoundedMsg::Inner { msg, .. } => 64 + msg.size_bits(nu),
            BoundedMsg::Reset(m) => match m {
                ResetMsg::Request { .. }
                | ResetMsg::SyncReq { .. }
                | ResetMsg::InstallAck { .. } => 128,
                ResetMsg::SyncResp { reg, .. } | ResetMsg::Install { reg, .. } => {
                    128 + reg_array_bits(reg.n(), nu)
                }
            },
        }
    }
}

impl<M: ArbitraryMsg> ArbitraryMsg for BoundedMsg<M> {
    fn arbitrary(rng: &mut dyn RngCore, n: usize, max_index: u64) -> Self {
        if rng.next_u32().is_multiple_of(4) {
            BoundedMsg::Reset(ResetMsg::Request {
                epoch: rng.next_u64() % (max_index + 1),
            })
        } else {
            BoundedMsg::Inner {
                epoch: rng.next_u64() % (max_index + 1),
                msg: M::arbitrary(rng, n, max_index),
            }
        }
    }
}

#[derive(Clone, Debug)]
enum Mode {
    Normal,
    /// Operations disabled; waiting for the reset to complete.
    Wrapping,
}

/// The bounded-counter wrapper. See the module docs above.
#[derive(Debug)]
pub struct Bounded<P: HasIndices> {
    inner: P,
    cfg: BoundedConfig,
    epoch: u64,
    mode: Mode,
    /// Coordinator-only: the in-progress reset.
    reset: Option<ResetState>,
    /// Coordinator-only: Install retransmission until everyone acked.
    pending_install: Option<(u64, RegArray, ProcessSet)>,
    /// Number of resets completed locally (experiment probe).
    resets_done: u64,
    /// Operations aborted by resets (experiment probe).
    aborted: u64,
}

impl<P: HasIndices> Bounded<P> {
    /// Wraps `inner` with the bounded-counter construction.
    pub fn new(inner: P, cfg: BoundedConfig) -> Self {
        assert!(cfg.max_int > 1, "MAXINT must exceed 1");
        Bounded {
            inner,
            cfg,
            epoch: 0,
            mode: Mode::Normal,
            reset: None,
            pending_install: None,
            resets_done: 0,
            aborted: 0,
        }
    }

    /// The wrapped protocol (probes/tests).
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether a reset is currently disabling operations.
    pub fn is_wrapping(&self) -> bool {
        matches!(self.mode, Mode::Wrapping)
    }

    /// Resets completed at this node.
    pub fn resets_done(&self) -> u64 {
        self.resets_done
    }

    /// Operations aborted by resets at this node.
    pub fn aborted_ops(&self) -> u64 {
        self.aborted
    }

    fn coordinator(&self) -> NodeId {
        NodeId(0)
    }

    fn is_coordinator(&self) -> bool {
        self.inner.id() == self.coordinator()
    }

    fn wrap_inner_effects(
        &mut self,
        mut inner_fx: Effects<P::Msg>,
        fx: &mut Effects<BoundedMsg<P::Msg>>,
    ) {
        for (to, msg) in inner_fx.take_sends() {
            fx.send(
                to,
                BoundedMsg::Inner {
                    epoch: self.epoch,
                    msg,
                },
            );
        }
        for (id, resp) in inner_fx.take_completions() {
            fx.complete(id, resp);
        }
        for id in inner_fx.take_aborts() {
            fx.abort(id);
        }
    }

    fn abort_drained(&mut self, fx: &mut Effects<BoundedMsg<P::Msg>>) {
        for id in self.inner.drain_ops() {
            self.aborted += 1;
            fx.abort(id);
        }
    }

    /// Enters the wrapping mode towards `epoch` (idempotent).
    fn enter_wrapping(&mut self, epoch: u64, fx: &mut Effects<BoundedMsg<P::Msg>>) {
        if matches!(self.mode, Mode::Wrapping)
            && self.reset.as_ref().is_none_or(|r| r.epoch >= epoch)
        {
            return;
        }
        self.mode = Mode::Wrapping;
        self.abort_drained(fx);
        if self.is_coordinator() {
            let st = ResetState::new(epoch, self.inner.export_reg(), self.inner.id());
            fx.broadcast(
                self.inner.n(),
                &BoundedMsg::Reset(ResetMsg::SyncReq { epoch }),
            );
            self.reset = Some(st);
        } else {
            fx.broadcast(
                self.inner.n(),
                &BoundedMsg::Reset(ResetMsg::Request { epoch }),
            );
        }
    }

    fn install(&mut self, epoch: u64, reg: RegArray, fx: &mut Effects<BoundedMsg<P::Msg>>) {
        self.abort_drained(fx);
        self.inner.install_reset(reg);
        self.epoch = epoch;
        self.mode = Mode::Normal;
        self.reset = None;
        self.resets_done += 1;
    }
}

impl<P: HasIndices> Protocol for Bounded<P> {
    type Msg = BoundedMsg<P::Msg>;

    fn id(&self) -> NodeId {
        self.inner.id()
    }

    fn n(&self) -> usize {
        self.inner.n()
    }

    fn on_round(&mut self, fx: &mut Effects<BoundedMsg<P::Msg>>) {
        match self.mode {
            Mode::Normal => {
                let mut inner_fx = Effects::new();
                self.inner.on_round(&mut inner_fx);
                self.wrap_inner_effects(inner_fx, fx);
                if self.inner.max_index() >= self.cfg.max_int {
                    self.enter_wrapping(self.epoch + 1, fx);
                }
            }
            Mode::Wrapping => {
                // Retransmit the current reset phase.
                match (&self.reset, self.is_coordinator()) {
                    (Some(st), true) => {
                        let msg = match &st.canonical {
                            None => ResetMsg::SyncReq { epoch: st.epoch },
                            Some(reg) => ResetMsg::Install {
                                epoch: st.epoch,
                                reg: reg.clone(),
                            },
                        };
                        fx.broadcast(self.inner.n(), &BoundedMsg::Reset(msg));
                    }
                    _ => {
                        // Non-coordinator keeps requesting until served.
                        let epoch = self.epoch + 1;
                        fx.broadcast(
                            self.inner.n(),
                            &BoundedMsg::Reset(ResetMsg::Request { epoch }),
                        );
                    }
                }
            }
        }
        // Coordinator: retransmit Install to stragglers even after
        // returning to Normal.
        if let Some((epoch, reg, acked)) = &self.pending_install {
            let (epoch, reg) = (*epoch, reg.clone());
            for k in 0..self.inner.n() {
                if !acked.contains(NodeId(k)) {
                    fx.send(
                        NodeId(k),
                        BoundedMsg::Reset(ResetMsg::Install {
                            epoch,
                            reg: reg.clone(),
                        }),
                    );
                }
            }
        }
    }

    fn on_message(
        &mut self,
        from: NodeId,
        msg: BoundedMsg<P::Msg>,
        fx: &mut Effects<BoundedMsg<P::Msg>>,
    ) {
        match msg {
            BoundedMsg::Inner { epoch, msg } => {
                if epoch != self.epoch || matches!(self.mode, Mode::Wrapping) {
                    // Stale (or early) epoch, or operations disabled.
                    return;
                }
                let mut inner_fx = Effects::new();
                self.inner.on_message(from, msg, &mut inner_fx);
                self.wrap_inner_effects(inner_fx, fx);
                if self.inner.max_index() >= self.cfg.max_int {
                    self.enter_wrapping(self.epoch + 1, fx);
                }
            }
            BoundedMsg::Reset(reset) => match reset {
                ResetMsg::Request { epoch } => {
                    if epoch > self.epoch {
                        self.enter_wrapping(epoch, fx);
                    } else if self.is_coordinator() {
                        // The requester lags behind a finished reset:
                        // catch it up with the current state.
                        fx.send(
                            from,
                            BoundedMsg::Reset(ResetMsg::Install {
                                epoch: self.epoch,
                                reg: self.inner.export_reg(),
                            }),
                        );
                    }
                }
                ResetMsg::SyncReq { epoch } => {
                    if epoch > self.epoch {
                        if !matches!(self.mode, Mode::Wrapping) {
                            self.mode = Mode::Wrapping;
                            self.abort_drained(fx);
                        }
                        fx.send(
                            from,
                            BoundedMsg::Reset(ResetMsg::SyncResp {
                                epoch,
                                reg: self.inner.export_reg(),
                            }),
                        );
                    }
                }
                ResetMsg::SyncResp { epoch, reg } => {
                    let all = match &mut self.reset {
                        Some(st) if st.epoch == epoch && st.canonical.is_none() => {
                            st.on_sync(from, &reg)
                        }
                        _ => false,
                    };
                    if all {
                        let st = self.reset.as_mut().expect("reset state");
                        let canonical = st.make_canonical();
                        let mut acked = ProcessSet::new(self.inner.n());
                        acked.insert(self.inner.id());
                        fx.broadcast(
                            self.inner.n(),
                            &BoundedMsg::Reset(ResetMsg::Install {
                                epoch,
                                reg: canonical.clone(),
                            }),
                        );
                        self.pending_install = Some((epoch, canonical.clone(), acked));
                        self.install(epoch, canonical, fx);
                    }
                }
                ResetMsg::Install { epoch, reg } => {
                    if epoch > self.epoch {
                        self.install(epoch, reg, fx);
                        fx.send(from, BoundedMsg::Reset(ResetMsg::InstallAck { epoch }));
                    } else if epoch == self.epoch {
                        // Idempotent re-install (retransmission).
                        fx.send(from, BoundedMsg::Reset(ResetMsg::InstallAck { epoch }));
                    }
                }
                ResetMsg::InstallAck { epoch } => {
                    let done = match &mut self.pending_install {
                        Some((e, _, acked)) if *e == epoch => {
                            acked.insert(from);
                            acked.len() == self.inner.n()
                        }
                        _ => false,
                    };
                    if done {
                        self.pending_install = None;
                    }
                }
            },
        }
    }

    fn invoke(&mut self, id: OpId, op: SnapshotOp, fx: &mut Effects<BoundedMsg<P::Msg>>) {
        match self.mode {
            Mode::Normal => {
                let mut inner_fx = Effects::new();
                self.inner.invoke(id, op, &mut inner_fx);
                self.wrap_inner_effects(inner_fx, fx);
            }
            Mode::Wrapping => {
                // The paper's criterion allows aborting a bounded number
                // of operations during the seldom reset periods.
                self.aborted += 1;
                fx.abort(id);
            }
        }
    }

    fn is_busy(&self) -> bool {
        self.inner.is_busy()
    }

    fn corrupt(&mut self, rng: &mut dyn RngCore) {
        self.inner.corrupt(rng);
        self.epoch = rng.next_u64() % 16;
        self.mode = Mode::Normal;
        self.reset = None;
        self.pending_install = None;
    }

    fn restart(&mut self) {
        self.inner.restart();
        self.epoch = 0;
        self.mode = Mode::Normal;
        self.reset = None;
        self.pending_install = None;
    }

    fn local_invariants_hold(&self) -> bool {
        self.inner.local_invariants_hold() && self.inner.max_index() < self.cfg.max_int
    }

    fn stats(&self) -> ProtocolStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Alg1;
    use sss_types::Tagged;

    type B = Bounded<Alg1>;

    fn node(i: usize, n: usize, max_int: u64) -> B {
        Bounded::new(Alg1::new(NodeId(i), n), BoundedConfig { max_int })
    }

    fn fx() -> Effects<BoundedMsg<crate::Alg1Msg>> {
        Effects::new()
    }

    #[test]
    fn normal_mode_passes_traffic_through() {
        let mut a = node(0, 3, 1000);
        let mut e = fx();
        a.invoke(OpId(1), SnapshotOp::Write(5), &mut e);
        let sends = e.take_sends();
        assert_eq!(sends.len(), 3);
        assert!(matches!(sends[0].1, BoundedMsg::Inner { epoch: 0, .. }));
    }

    #[test]
    fn overflow_triggers_wrapping_and_aborts() {
        let mut a = node(1, 3, 5);
        let mut e = fx();
        // Push the inner index to the threshold via gossip.
        a.on_message(
            NodeId(0),
            BoundedMsg::Inner {
                epoch: 0,
                msg: crate::Alg1Msg::Gossip {
                    cell: Tagged::new(9, 5),
                },
            },
            &mut e,
        );
        assert!(a.is_wrapping());
        // New operations abort during the reset.
        a.invoke(OpId(7), SnapshotOp::Write(1), &mut e);
        assert_eq!(e.take_aborts(), vec![OpId(7)]);
        assert_eq!(a.aborted_ops(), 1);
    }

    #[test]
    fn stale_epoch_messages_are_dropped() {
        let mut a = node(1, 3, 1000);
        a.epoch = 2;
        let mut e = fx();
        a.on_message(
            NodeId(0),
            BoundedMsg::Inner {
                epoch: 1,
                msg: crate::Alg1Msg::Gossip {
                    cell: Tagged::new(9, 500),
                },
            },
            &mut e,
        );
        assert_eq!(a.inner().ts(), 0, "stale-epoch gossip ignored");
    }

    #[test]
    fn full_reset_round_trip_three_nodes() {
        // Drive the three wrapped nodes by hand, routing all messages.
        let n = 3;
        let mut nodes: Vec<B> = (0..n).map(|i| node(i, n, 10)).collect();
        let mut queues: Vec<Vec<(NodeId, BoundedMsg<crate::Alg1Msg>)>> = vec![vec![]; n];
        // Overflow at node 2.
        let mut e = fx();
        nodes[2].on_message(
            NodeId(1),
            BoundedMsg::Inner {
                epoch: 0,
                msg: crate::Alg1Msg::Gossip {
                    cell: Tagged::new(77, 10),
                },
            },
            &mut e,
        );
        for (to, m) in e.take_sends() {
            queues[to.index()].push((NodeId(2), m));
        }
        assert!(nodes[2].is_wrapping());
        // Route messages until quiescent (bounded rounds).
        for _ in 0..20 {
            let mut progress = false;
            for i in 0..n {
                let inbox = std::mem::take(&mut queues[i]);
                for (from, m) in inbox {
                    progress = true;
                    let mut e = fx();
                    nodes[i].on_message(from, m, &mut e);
                    for (to, m2) in e.take_sends() {
                        queues[to.index()].push((NodeId(i), m2));
                    }
                }
            }
            if !progress {
                // Let rounds retransmit.
                for (i, node) in nodes.iter_mut().enumerate() {
                    let mut e = fx();
                    node.on_round(&mut e);
                    for (to, m2) in e.take_sends() {
                        queues[to.index()].push((NodeId(i), m2));
                    }
                }
            }
            if nodes.iter().all(|x| !x.is_wrapping() && x.epoch() == 1) {
                break;
            }
        }
        for (i, x) in nodes.iter().enumerate() {
            assert_eq!(x.epoch(), 1, "node {i} moved to the new epoch");
            assert!(!x.is_wrapping(), "node {i} back to normal");
            assert!(x.inner().ts() <= 1, "node {i} wrapped its index");
        }
        // The register VALUE survived the reset at every node.
        for x in &nodes {
            assert_eq!(x.inner().reg().get(NodeId(2)).val, 77);
            assert_eq!(x.inner().reg().get(NodeId(2)).ts, 1, "re-stamped");
        }
    }
}
