//! The Section 5 bounded-counter construction: a wrapper that turns the
//! unbounded-index algorithms into bounded-space ones.
//!
//! Self-stabilization *requires* bounded state, so Section 5 prescribes:
//! once any operation index reaches `MAXINT`, (1) disable new operations,
//! (2) bring all nodes to agreement on the maximal indices and register
//! values, (3) run a consensus-based global reset that wraps every index
//! while keeping the register values, then re-enable operations. Because
//! a 64-bit counter can only reach `MAXINT` after a transient fault, the
//! reset runs *seldom*, and only it needs execution fairness
//! (the paper's "self-stabilization in the presence of seldom fairness").
//!
//! [`Bounded<P>`] implements this around any protocol implementing
//! [`HasIndices`] ([`Alg1`](crate::Alg1) and [`Alg3`](crate::Alg3) both
//! do):
//!
//! * every inner message travels inside an **epoch envelope**; messages
//!   from older epochs are discarded, so pre-reset timestamps cannot leak
//!   into the new epoch;
//! * operations invoked while a reset is in progress are **aborted** (the
//!   paper's criterion explicitly permits aborting a bounded number of
//!   operations during the seldom `R_globalReset` periods);
//! * the reset itself is coordinated by the lowest node id
//!   (see [`crate::reset`]).
//!
//! # Abort semantics: "outcome unknown"
//!
//! An aborted write may still have *taken effect* — in particular the
//! write that pushed the index to `MAXINT` installs its value locally
//! before the node disables operations, and the reset's sync phase then
//! preserves that value. Clients must treat an abort as "outcome
//! unknown" (like a timeout), **not** as "did not happen". The only safe
//! retry for an aborted write is re-read-then-decide: take a snapshot
//! first and re-issue only if the observed state shows the write did not
//! land. The runtime reports aborts distinctly from timeouts
//! (`ClusterError::Aborted { epoch }` names the reset epoch that killed
//! the operation) precisely so retry policies can apply that rule
//! instead of blindly re-issuing.
//!
//! # Reset hardening against crashes and liars
//!
//! The paper's reset assumes the coordinator (lowest id) stays up and
//! every node answers the sync phase. Under the chaos plane's adversary
//! (crashes mid-reset, partitions, Byzantine peers) that would wedge the
//! protocol, so the implementation bounds every wait:
//!
//! * **coordinator handoff** — coordination rotates by deadline: a node
//!   stuck in wrapping mode for `HANDOFF_ROUNDS` rounds without reset
//!   progress treats the next id (round-robin) as coordinator, and
//!   promotes itself when its own turn comes. A live coordinator's
//!   `SyncReq` retransmissions reset every follower's patience, so
//!   handoff only fires when the current coordinator is crashed,
//!   partitioned away, or lying silently;
//! * **majority sync** — a coordinator whose sync phase stalls for
//!   `SYNC_QUORUM_ROUNDS` rounds proceeds once a majority has answered,
//!   instead of waiting for all `n` (crashed minorities cannot block the
//!   reset forever);
//! * **bounded install retransmission** — `Install` is retransmitted to
//!   unacked nodes for at most `INSTALL_RETRANSMIT_ROUNDS` rounds;
//!   stragglers that resume later catch up through the `Request` →
//!   `Install` path (any node ahead of the requester answers, not just
//!   the coordinator).

use crate::reset::{ResetMsg, ResetState};
use rand::RngCore;
use sss_types::{
    reg_array_bits, ArbitraryMsg, Effects, MsgKind, NodeId, OpId, ProcessSet, ProtoMsg, Protocol,
    ProtocolStats, RegArray, SnapshotOp, Tagged,
};

/// Rounds a node tolerates in wrapping mode without reset progress
/// before it rotates coordination to the next id.
const HANDOFF_ROUNDS: u64 = 12;

/// Rounds a coordinator's sync phase may stall before it proceeds with
/// a majority instead of all `n`.
const SYNC_QUORUM_ROUNDS: u64 = 6;

/// Rounds `Install` is retransmitted to unacked nodes before the
/// coordinator gives up and leaves stragglers to the catch-up path.
const INSTALL_RETRANSMIT_ROUNDS: u64 = 30;

/// Extra capabilities [`Bounded`] needs from the wrapped protocol.
pub trait HasIndices: Protocol {
    /// The largest operation index anywhere in the local state (write
    /// indices, snapshot indices, register timestamps).
    fn max_index(&self) -> u64;

    /// The local register array (for the reset's sync phase).
    fn export_reg(&self) -> RegArray;

    /// Installs the canonical post-reset state: adopt `reg`, derive the
    /// own write index from it, zero all other indices, clear all
    /// in-progress phases.
    fn install_reset(&mut self, reg: RegArray);

    /// Removes all in-progress and queued client operations, returning
    /// their ids so the wrapper can abort them.
    fn drain_ops(&mut self) -> Vec<OpId>;

    /// Raises the local write index to at least `base` (test/chaos hook:
    /// lets wraparound campaigns start operations next to `MAXINT`
    /// instead of counting up from zero).
    fn seed_indices(&mut self, base: u64);
}

/// Configuration of [`Bounded`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BoundedConfig {
    /// The `MAXINT` threshold: reaching it triggers a global reset.
    /// Production would use ~`2^62`; tests use small values to exercise
    /// the wrap.
    pub max_int: u64,
}

impl Default for BoundedConfig {
    fn default() -> Self {
        BoundedConfig { max_int: 1 << 62 }
    }
}

/// Wire messages of [`Bounded`]: epoch-enveloped inner messages plus the
/// reset protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BoundedMsg<M> {
    /// An inner-protocol message valid in `epoch`.
    Inner {
        /// The sender's epoch.
        epoch: u64,
        /// The wrapped message.
        msg: M,
    },
    /// Global-reset traffic.
    Reset(ResetMsg),
}

impl<M: ProtoMsg> ProtoMsg for BoundedMsg<M> {
    fn kind(&self) -> MsgKind {
        match self {
            BoundedMsg::Inner { msg, .. } => msg.kind(),
            BoundedMsg::Reset(_) => MsgKind::Reset,
        }
    }

    fn size_bits(&self, nu: u32) -> u64 {
        match self {
            BoundedMsg::Inner { msg, .. } => 64 + msg.size_bits(nu),
            BoundedMsg::Reset(m) => match m {
                ResetMsg::Request { .. }
                | ResetMsg::SyncReq { .. }
                | ResetMsg::InstallAck { .. } => 128,
                ResetMsg::SyncResp { reg, .. } | ResetMsg::Install { reg, .. } => {
                    128 + reg_array_bits(reg.n(), nu)
                }
            },
        }
    }

    /// Equivocation keeps the epoch envelope intact (a liar that breaks
    /// the envelope is just dropped) and forges either the inner payload
    /// or — the nastiest case — the register array it contributes to a
    /// reset's sync phase, feeding lies into the canonical state.
    fn equivocate(&self, rng: &mut dyn RngCore) -> Option<Self> {
        match self {
            BoundedMsg::Inner { epoch, msg } => msg.equivocate(rng).map(|m| BoundedMsg::Inner {
                epoch: *epoch,
                msg: m,
            }),
            BoundedMsg::Reset(ResetMsg::SyncResp { epoch, reg }) => {
                let mut forged = reg.clone();
                for k in 0..forged.n() {
                    let cell = forged.get(NodeId(k));
                    if !cell.is_bottom() {
                        forged.set(NodeId(k), Tagged::new(rng.next_u64(), cell.ts));
                    }
                }
                Some(BoundedMsg::Reset(ResetMsg::SyncResp {
                    epoch: *epoch,
                    reg: forged,
                }))
            }
            BoundedMsg::Reset(_) => None,
        }
    }

    /// Index inflation also keeps the envelope: the inflated inner index
    /// is what honest receivers merge, driving them over `MAXINT`.
    fn inflate_index(&self, floor: u64) -> Option<Self> {
        match self {
            BoundedMsg::Inner { epoch, msg } => {
                msg.inflate_index(floor).map(|m| BoundedMsg::Inner {
                    epoch: *epoch,
                    msg: m,
                })
            }
            BoundedMsg::Reset(_) => None,
        }
    }
}

impl<M: ArbitraryMsg> ArbitraryMsg for BoundedMsg<M> {
    fn arbitrary(rng: &mut dyn RngCore, n: usize, max_index: u64) -> Self {
        if rng.next_u32().is_multiple_of(4) {
            BoundedMsg::Reset(ResetMsg::Request {
                epoch: rng.next_u64() % (max_index + 1),
            })
        } else {
            BoundedMsg::Inner {
                epoch: rng.next_u64() % (max_index + 1),
                msg: M::arbitrary(rng, n, max_index),
            }
        }
    }
}

#[derive(Clone, Debug)]
enum Mode {
    Normal,
    /// Operations disabled; waiting for the reset to complete.
    Wrapping,
}

/// The bounded-counter wrapper. See the module docs above.
#[derive(Debug)]
pub struct Bounded<P: HasIndices> {
    inner: P,
    cfg: BoundedConfig,
    epoch: u64,
    mode: Mode,
    /// Coordinator-only: the in-progress reset.
    reset: Option<ResetState>,
    /// Coordinator-only: Install retransmission until everyone acked.
    pending_install: Option<(u64, RegArray, ProcessSet)>,
    /// Rounds spent in wrapping mode without reset progress — drives the
    /// coordinator-handoff rotation and the majority-sync deadline.
    wrap_rounds: u64,
    /// Rounds `pending_install` has been retransmitting.
    install_rounds: u64,
    /// Number of resets completed locally (experiment probe).
    resets_done: u64,
    /// Operations aborted by resets (experiment probe).
    aborted: u64,
    /// Inner messages discarded by the epoch envelope (stale or foreign
    /// epochs — replays across a reset land here).
    stale_dropped: u64,
}

impl<P: HasIndices> Bounded<P> {
    /// Wraps `inner` with the bounded-counter construction.
    pub fn new(inner: P, cfg: BoundedConfig) -> Self {
        assert!(cfg.max_int > 1, "MAXINT must exceed 1");
        Bounded {
            inner,
            cfg,
            epoch: 0,
            mode: Mode::Normal,
            reset: None,
            pending_install: None,
            wrap_rounds: 0,
            install_rounds: 0,
            resets_done: 0,
            aborted: 0,
            stale_dropped: 0,
        }
    }

    /// The wrapped protocol (probes/tests).
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether a reset is currently disabling operations.
    pub fn is_wrapping(&self) -> bool {
        matches!(self.mode, Mode::Wrapping)
    }

    /// Resets completed at this node.
    pub fn resets_done(&self) -> u64 {
        self.resets_done
    }

    /// Operations aborted by resets at this node.
    pub fn aborted_ops(&self) -> u64 {
        self.aborted
    }

    /// Inner messages discarded by the epoch envelope at this node.
    pub fn stale_epoch_dropped(&self) -> u64 {
        self.stale_dropped
    }

    /// Seeds the inner protocol's indices to at least `base` (test/chaos
    /// hook — see [`HasIndices::seed_indices`]).
    pub fn seed_indices_for_test(&mut self, base: u64) {
        self.inner.seed_indices(base);
    }

    /// The node this one currently treats as reset coordinator: the
    /// lowest id at first, rotating round-robin every `HANDOFF_ROUNDS`
    /// of stalled wrapping (so a crashed or lying coordinator cannot
    /// wedge the reset forever).
    fn coordinator(&self) -> NodeId {
        let rank = (self.wrap_rounds / HANDOFF_ROUNDS) as usize % self.inner.n();
        NodeId(rank)
    }

    fn is_coordinator(&self) -> bool {
        self.inner.id() == self.coordinator()
    }

    /// A strict majority of the process universe.
    fn majority(&self) -> usize {
        self.inner.n() / 2 + 1
    }

    fn wrap_inner_effects(
        &mut self,
        mut inner_fx: Effects<P::Msg>,
        fx: &mut Effects<BoundedMsg<P::Msg>>,
    ) {
        for (to, msg) in inner_fx.take_sends() {
            fx.send(
                to,
                BoundedMsg::Inner {
                    epoch: self.epoch,
                    msg,
                },
            );
        }
        for (id, resp) in inner_fx.take_completions() {
            fx.complete(id, resp);
        }
        for id in inner_fx.take_aborts() {
            fx.abort(id);
        }
    }

    fn abort_drained(&mut self, fx: &mut Effects<BoundedMsg<P::Msg>>) {
        for id in self.inner.drain_ops() {
            self.aborted += 1;
            fx.abort(id);
        }
    }

    /// Enters the wrapping mode towards `epoch` (idempotent).
    fn enter_wrapping(&mut self, epoch: u64, fx: &mut Effects<BoundedMsg<P::Msg>>) {
        if matches!(self.mode, Mode::Wrapping)
            && self.reset.as_ref().is_none_or(|r| r.epoch >= epoch)
        {
            return;
        }
        self.mode = Mode::Wrapping;
        self.wrap_rounds = 0;
        self.abort_drained(fx);
        if self.is_coordinator() {
            let st = ResetState::new(epoch, self.inner.export_reg(), self.inner.id());
            fx.broadcast(
                self.inner.n(),
                &BoundedMsg::Reset(ResetMsg::SyncReq { epoch }),
            );
            self.reset = Some(st);
        } else {
            fx.broadcast(
                self.inner.n(),
                &BoundedMsg::Reset(ResetMsg::Request { epoch }),
            );
        }
    }

    fn install(&mut self, epoch: u64, reg: RegArray, fx: &mut Effects<BoundedMsg<P::Msg>>) {
        self.abort_drained(fx);
        self.inner.install_reset(reg);
        self.epoch = epoch;
        self.mode = Mode::Normal;
        self.reset = None;
        self.wrap_rounds = 0;
        self.resets_done += 1;
    }

    /// Seals the sync phase: computes the canonical array, broadcasts
    /// `Install` (tracking acks for retransmission), and installs
    /// locally. Reached either when all `n` answered the sync, or when a
    /// majority did and the `SYNC_QUORUM_ROUNDS` deadline expired.
    fn finish_sync(&mut self, fx: &mut Effects<BoundedMsg<P::Msg>>) {
        let st = self.reset.as_mut().expect("reset state");
        let epoch = st.epoch;
        let canonical = st.make_canonical();
        let mut acked = ProcessSet::new(self.inner.n());
        acked.insert(self.inner.id());
        fx.broadcast(
            self.inner.n(),
            &BoundedMsg::Reset(ResetMsg::Install {
                epoch,
                reg: canonical.clone(),
            }),
        );
        self.pending_install = Some((epoch, canonical.clone(), acked));
        self.install_rounds = 0;
        self.install(epoch, canonical, fx);
    }
}

impl<P: HasIndices> Protocol for Bounded<P> {
    type Msg = BoundedMsg<P::Msg>;

    fn id(&self) -> NodeId {
        self.inner.id()
    }

    fn n(&self) -> usize {
        self.inner.n()
    }

    fn on_round(&mut self, fx: &mut Effects<BoundedMsg<P::Msg>>) {
        match self.mode {
            Mode::Normal => {
                let mut inner_fx = Effects::new();
                self.inner.on_round(&mut inner_fx);
                self.wrap_inner_effects(inner_fx, fx);
                if self.inner.max_index() >= self.cfg.max_int {
                    self.enter_wrapping(self.epoch + 1, fx);
                }
            }
            Mode::Wrapping => {
                self.wrap_rounds += 1;
                let target = self.reset.as_ref().map_or(self.epoch + 1, |st| st.epoch);
                if self.is_coordinator() {
                    // Promote: a handed-off coordinator starts its own
                    // sync phase for the same target epoch.
                    if self.reset.is_none() {
                        self.reset = Some(ResetState::new(
                            target,
                            self.inner.export_reg(),
                            self.inner.id(),
                        ));
                    }
                    let tenure = self.wrap_rounds % HANDOFF_ROUNDS;
                    let quorum_due = {
                        let st = self.reset.as_ref().expect("reset state");
                        st.canonical.is_none()
                            && tenure >= SYNC_QUORUM_ROUNDS
                            && st.synced.len() >= self.majority()
                    };
                    if quorum_due {
                        // The stragglers are crashed or cut off; a
                        // majority view is the best available.
                        self.finish_sync(fx);
                    } else {
                        let st = self.reset.as_ref().expect("reset state");
                        let msg = match &st.canonical {
                            None => ResetMsg::SyncReq { epoch: st.epoch },
                            Some(reg) => ResetMsg::Install {
                                epoch: st.epoch,
                                reg: reg.clone(),
                            },
                        };
                        fx.broadcast(self.inner.n(), &BoundedMsg::Reset(msg));
                    }
                } else {
                    // Non-coordinator keeps requesting until served.
                    fx.broadcast(
                        self.inner.n(),
                        &BoundedMsg::Reset(ResetMsg::Request { epoch: target }),
                    );
                }
            }
        }
        // Coordinator: retransmit Install to stragglers even after
        // returning to Normal — but not forever; past the deadline,
        // stragglers catch up through the Request → Install path.
        if self.pending_install.is_some() {
            self.install_rounds += 1;
            if self.install_rounds > INSTALL_RETRANSMIT_ROUNDS {
                self.pending_install = None;
            }
        }
        if let Some((epoch, reg, acked)) = &self.pending_install {
            let (epoch, reg) = (*epoch, reg.clone());
            for k in 0..self.inner.n() {
                if !acked.contains(NodeId(k)) {
                    fx.send(
                        NodeId(k),
                        BoundedMsg::Reset(ResetMsg::Install {
                            epoch,
                            reg: reg.clone(),
                        }),
                    );
                }
            }
        }
    }

    fn on_message(
        &mut self,
        from: NodeId,
        msg: BoundedMsg<P::Msg>,
        fx: &mut Effects<BoundedMsg<P::Msg>>,
    ) {
        match msg {
            BoundedMsg::Inner { epoch, msg } => {
                if epoch != self.epoch {
                    // Stale or foreign epoch: the envelope rejects it so
                    // pre-reset indices cannot leak across a reset.
                    self.stale_dropped += 1;
                    if epoch > self.epoch {
                        // The sender is ahead — we missed an Install.
                        // Ask it to catch us up.
                        fx.send(
                            from,
                            BoundedMsg::Reset(ResetMsg::Request { epoch: self.epoch }),
                        );
                    }
                    return;
                }
                if matches!(self.mode, Mode::Wrapping) {
                    // Operations disabled while the reset runs.
                    return;
                }
                let mut inner_fx = Effects::new();
                self.inner.on_message(from, msg, &mut inner_fx);
                self.wrap_inner_effects(inner_fx, fx);
                if self.inner.max_index() >= self.cfg.max_int {
                    self.enter_wrapping(self.epoch + 1, fx);
                }
            }
            BoundedMsg::Reset(reset) => match reset {
                ResetMsg::Request { epoch } => {
                    if epoch > self.epoch {
                        self.enter_wrapping(epoch, fx);
                    } else if !matches!(self.mode, Mode::Wrapping) {
                        // The requester lags behind a finished reset: any
                        // node ahead of it catches it up (not just the
                        // coordinator — it may be crashed).
                        fx.send(
                            from,
                            BoundedMsg::Reset(ResetMsg::Install {
                                epoch: self.epoch,
                                reg: self.inner.export_reg(),
                            }),
                        );
                    }
                }
                ResetMsg::SyncReq { epoch } => {
                    if from == self.inner.id() {
                        // Our own broadcast echo: the coordinator already
                        // merged its own state in `ResetState::new`, and
                        // zeroing our own handoff clock here would demote
                        // us every round.
                        return;
                    }
                    if epoch > self.epoch {
                        if !matches!(self.mode, Mode::Wrapping) {
                            self.mode = Mode::Wrapping;
                            self.abort_drained(fx);
                        }
                        // A live coordinator's retransmissions reset the
                        // handoff clock: rotation only fires when the
                        // coordinator goes silent.
                        self.wrap_rounds = 0;
                        fx.send(
                            from,
                            BoundedMsg::Reset(ResetMsg::SyncResp {
                                epoch,
                                reg: self.inner.export_reg(),
                            }),
                        );
                    } else if !matches!(self.mode, Mode::Wrapping) {
                        // A stale coordinator (resumed after its reset
                        // completed without it): catch it up.
                        fx.send(
                            from,
                            BoundedMsg::Reset(ResetMsg::Install {
                                epoch: self.epoch,
                                reg: self.inner.export_reg(),
                            }),
                        );
                    }
                }
                ResetMsg::SyncResp { epoch, reg } => {
                    let all = match &mut self.reset {
                        Some(st) if st.epoch == epoch && st.canonical.is_none() => {
                            st.on_sync(from, &reg)
                        }
                        _ => false,
                    };
                    if all {
                        self.finish_sync(fx);
                    }
                }
                ResetMsg::Install { epoch, reg } => {
                    if epoch > self.epoch {
                        self.install(epoch, reg, fx);
                        fx.send(from, BoundedMsg::Reset(ResetMsg::InstallAck { epoch }));
                    } else if epoch == self.epoch {
                        // Idempotent re-install (retransmission).
                        fx.send(from, BoundedMsg::Reset(ResetMsg::InstallAck { epoch }));
                    }
                }
                ResetMsg::InstallAck { epoch } => {
                    let done = match &mut self.pending_install {
                        Some((e, _, acked)) if *e == epoch => {
                            acked.insert(from);
                            acked.len() == self.inner.n()
                        }
                        _ => false,
                    };
                    if done {
                        self.pending_install = None;
                    }
                }
            },
        }
    }

    fn invoke(&mut self, id: OpId, op: SnapshotOp, fx: &mut Effects<BoundedMsg<P::Msg>>) {
        match self.mode {
            Mode::Normal => {
                let mut inner_fx = Effects::new();
                self.inner.invoke(id, op, &mut inner_fx);
                self.wrap_inner_effects(inner_fx, fx);
            }
            Mode::Wrapping => {
                // The paper's criterion allows aborting a bounded number
                // of operations during the seldom reset periods.
                self.aborted += 1;
                fx.abort(id);
            }
        }
    }

    fn is_busy(&self) -> bool {
        self.inner.is_busy()
    }

    fn corrupt(&mut self, rng: &mut dyn RngCore) {
        self.inner.corrupt(rng);
        self.epoch = rng.next_u64() % 16;
        self.mode = Mode::Normal;
        self.reset = None;
        self.pending_install = None;
        self.wrap_rounds = 0;
        self.install_rounds = 0;
    }

    fn restart(&mut self) {
        self.inner.restart();
        self.epoch = 0;
        self.mode = Mode::Normal;
        self.reset = None;
        self.pending_install = None;
        self.wrap_rounds = 0;
        self.install_rounds = 0;
    }

    fn local_invariants_hold(&self) -> bool {
        self.inner.local_invariants_hold() && self.inner.max_index() < self.cfg.max_int
    }

    fn stats(&self) -> ProtocolStats {
        let mut stats = self.inner.stats();
        stats.stale_epoch_dropped = self.stale_dropped;
        stats
    }

    fn epoch_probe(&self) -> Option<u64> {
        Some(self.epoch)
    }

    fn wrapping_probe(&self) -> bool {
        self.is_wrapping()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Alg1;
    use sss_types::Tagged;

    type B = Bounded<Alg1>;

    fn node(i: usize, n: usize, max_int: u64) -> B {
        Bounded::new(Alg1::new(NodeId(i), n), BoundedConfig { max_int })
    }

    fn fx() -> Effects<BoundedMsg<crate::Alg1Msg>> {
        Effects::new()
    }

    #[test]
    fn normal_mode_passes_traffic_through() {
        let mut a = node(0, 3, 1000);
        let mut e = fx();
        a.invoke(OpId(1), SnapshotOp::Write(5), &mut e);
        let sends = e.take_sends();
        assert_eq!(sends.len(), 3);
        assert!(matches!(sends[0].1, BoundedMsg::Inner { epoch: 0, .. }));
    }

    #[test]
    fn overflow_triggers_wrapping_and_aborts() {
        let mut a = node(1, 3, 5);
        let mut e = fx();
        // Push the inner index to the threshold via gossip.
        a.on_message(
            NodeId(0),
            BoundedMsg::Inner {
                epoch: 0,
                msg: crate::Alg1Msg::Gossip {
                    cell: Tagged::new(9, 5),
                },
            },
            &mut e,
        );
        assert!(a.is_wrapping());
        // New operations abort during the reset.
        a.invoke(OpId(7), SnapshotOp::Write(1), &mut e);
        assert_eq!(e.take_aborts(), vec![OpId(7)]);
        assert_eq!(a.aborted_ops(), 1);
    }

    #[test]
    fn stale_epoch_messages_are_dropped() {
        let mut a = node(1, 3, 1000);
        a.epoch = 2;
        let mut e = fx();
        a.on_message(
            NodeId(0),
            BoundedMsg::Inner {
                epoch: 1,
                msg: crate::Alg1Msg::Gossip {
                    cell: Tagged::new(9, 500),
                },
            },
            &mut e,
        );
        assert_eq!(a.inner().ts(), 0, "stale-epoch gossip ignored");
        assert_eq!(a.stale_epoch_dropped(), 1, "the envelope counts drops");
        assert_eq!(a.stats().stale_epoch_dropped, 1);
        assert!(e.take_sends().is_empty(), "stale drop is silent");
    }

    #[test]
    fn future_epoch_messages_trigger_catch_up() {
        let mut a = node(1, 3, 1000);
        let mut e = fx();
        a.on_message(
            NodeId(0),
            BoundedMsg::Inner {
                epoch: 3,
                msg: crate::Alg1Msg::Gossip {
                    cell: Tagged::new(9, 500),
                },
            },
            &mut e,
        );
        assert_eq!(a.inner().ts(), 0, "foreign-epoch gossip ignored");
        assert_eq!(a.stale_epoch_dropped(), 1);
        let sends = e.take_sends();
        assert_eq!(sends.len(), 1, "asks the ahead sender for an Install");
        assert!(matches!(
            &sends[0],
            (NodeId(0), BoundedMsg::Reset(ResetMsg::Request { epoch: 0 }))
        ));
    }

    #[test]
    fn any_node_serves_lagging_requesters() {
        // A non-coordinator that finished the reset catches up a
        // straggler — the coordinator may be crashed.
        let mut a = node(2, 3, 1000);
        a.epoch = 4;
        let mut e = fx();
        a.on_message(
            NodeId(1),
            BoundedMsg::Reset(ResetMsg::Request { epoch: 2 }),
            &mut e,
        );
        let sends = e.take_sends();
        assert_eq!(sends.len(), 1);
        assert!(matches!(
            &sends[0],
            (
                NodeId(1),
                BoundedMsg::Reset(ResetMsg::Install { epoch: 4, .. })
            )
        ));
    }

    #[test]
    fn coordinator_crash_hands_off_and_majority_completes_the_reset() {
        // Node 0 (the initial coordinator) is crashed for the whole run:
        // its messages are never delivered and it takes no steps. The
        // reset must still terminate via handoff to node 1 plus the
        // majority-sync deadline.
        let n = 3;
        let mut nodes: Vec<B> = (0..n).map(|i| node(i, n, 10)).collect();
        let mut queues: Vec<Vec<(NodeId, BoundedMsg<crate::Alg1Msg>)>> = vec![vec![]; n];
        let mut e = fx();
        nodes[2].on_message(
            NodeId(1),
            BoundedMsg::Inner {
                epoch: 0,
                msg: crate::Alg1Msg::Gossip {
                    cell: Tagged::new(42, 10),
                },
            },
            &mut e,
        );
        for (to, m) in e.take_sends() {
            queues[to.index()].push((NodeId(2), m));
        }
        assert!(nodes[2].is_wrapping());
        // Alternate delivery and rounds; node 0 never participates.
        for _ in 0..(4 * HANDOFF_ROUNDS) {
            for i in 1..n {
                let inbox = std::mem::take(&mut queues[i]);
                for (from, m) in inbox {
                    let mut e = fx();
                    nodes[i].on_message(from, m, &mut e);
                    for (to, m2) in e.take_sends() {
                        queues[to.index()].push((NodeId(i), m2));
                    }
                }
            }
            for (i, node) in nodes.iter_mut().enumerate().skip(1) {
                let mut e = fx();
                node.on_round(&mut e);
                for (to, m2) in e.take_sends() {
                    queues[to.index()].push((NodeId(i), m2));
                }
            }
            if (1..n).all(|i| !nodes[i].is_wrapping() && nodes[i].epoch() == 1) {
                break;
            }
        }
        for (i, node) in nodes.iter().enumerate().skip(1) {
            assert_eq!(node.epoch(), 1, "node {i} reset without node 0");
            assert!(!node.is_wrapping(), "node {i} back to normal");
        }
        // The register value survived the coordinator crash.
        assert_eq!(nodes[1].inner().reg().get(NodeId(2)).val, 42);
    }

    #[test]
    fn equivocated_gossip_keeps_the_envelope_but_forges_the_value() {
        use rand::{rngs::StdRng, SeedableRng};
        let msg = BoundedMsg::Inner {
            epoch: 7,
            msg: crate::Alg1Msg::Gossip {
                cell: Tagged::new(5, 3),
            },
        };
        let mut rng = StdRng::seed_from_u64(1);
        let forged = msg.equivocate(&mut rng).expect("gossip equivocates");
        match forged {
            BoundedMsg::Inner {
                epoch,
                msg: crate::Alg1Msg::Gossip { cell },
            } => {
                assert_eq!(epoch, 7, "envelope intact");
                assert_eq!(cell.ts, 3, "index intact");
                assert_ne!(cell.val, 5, "value forged");
            }
            other => panic!("unexpected rewrite {other:?}"),
        }
    }

    #[test]
    fn inflated_gossip_drives_receivers_over_maxint() {
        let msg = BoundedMsg::Inner {
            epoch: 0,
            msg: crate::Alg1Msg::Gossip {
                cell: Tagged::new(5, 3),
            },
        };
        let forged = msg.inflate_index(1 << 20).expect("gossip inflates");
        match &forged {
            BoundedMsg::Inner {
                msg: crate::Alg1Msg::Gossip { cell },
                ..
            } => assert_eq!(cell.ts, 1 << 20),
            other => panic!("unexpected rewrite {other:?}"),
        }
        // Delivering it to an honest node trips the overflow guard.
        let mut a = node(1, 3, 1 << 20);
        let mut e = fx();
        a.on_message(NodeId(0), forged, &mut e);
        assert!(a.is_wrapping(), "inflation forced a reset");
    }

    #[test]
    fn seeding_indices_points_the_node_at_maxint() {
        let mut a = node(0, 3, 1000);
        a.seed_indices_for_test(999);
        assert_eq!(a.inner().ts(), 999);
        let mut e = fx();
        a.on_round(&mut e);
        // One more write index and the overflow guard fires; seeding
        // alone (999 < 1000) must not.
        assert!(!a.is_wrapping());
        a.invoke(OpId(1), SnapshotOp::Write(5), &mut e);
        a.on_round(&mut e);
        assert!(a.is_wrapping(), "first write after seeding wraps");
    }

    #[test]
    fn full_reset_round_trip_three_nodes() {
        // Drive the three wrapped nodes by hand, routing all messages.
        let n = 3;
        let mut nodes: Vec<B> = (0..n).map(|i| node(i, n, 10)).collect();
        let mut queues: Vec<Vec<(NodeId, BoundedMsg<crate::Alg1Msg>)>> = vec![vec![]; n];
        // Overflow at node 2.
        let mut e = fx();
        nodes[2].on_message(
            NodeId(1),
            BoundedMsg::Inner {
                epoch: 0,
                msg: crate::Alg1Msg::Gossip {
                    cell: Tagged::new(77, 10),
                },
            },
            &mut e,
        );
        for (to, m) in e.take_sends() {
            queues[to.index()].push((NodeId(2), m));
        }
        assert!(nodes[2].is_wrapping());
        // Route messages until quiescent (bounded rounds).
        for _ in 0..20 {
            let mut progress = false;
            for i in 0..n {
                let inbox = std::mem::take(&mut queues[i]);
                for (from, m) in inbox {
                    progress = true;
                    let mut e = fx();
                    nodes[i].on_message(from, m, &mut e);
                    for (to, m2) in e.take_sends() {
                        queues[to.index()].push((NodeId(i), m2));
                    }
                }
            }
            if !progress {
                // Let rounds retransmit.
                for (i, node) in nodes.iter_mut().enumerate() {
                    let mut e = fx();
                    node.on_round(&mut e);
                    for (to, m2) in e.take_sends() {
                        queues[to.index()].push((NodeId(i), m2));
                    }
                }
            }
            if nodes.iter().all(|x| !x.is_wrapping() && x.epoch() == 1) {
                break;
            }
        }
        for (i, x) in nodes.iter().enumerate() {
            assert_eq!(x.epoch(), 1, "node {i} moved to the new epoch");
            assert!(!x.is_wrapping(), "node {i} back to normal");
            assert!(x.inner().ts() <= 1, "node {i} wrapped its index");
        }
        // The register VALUE survived the reset at every node.
        for x in &nodes {
            assert_eq!(x.inner().reg().get(NodeId(2)).val, 77);
            assert_eq!(x.inner().reg().get(NodeId(2)).ts, 1, "re-stamped");
        }
    }
}
