//! Wire-codec layouts for the paper's message sets.
//!
//! Bodies are a tag byte followed by little-endian fields; register
//! arrays decode through `WireReader::payload` into the same
//! `Arc`-shared [`Payload`] the in-process backends hand around, so a
//! received `WRITE` costs one allocation regardless of `n`. Tags are
//! per-message-set (the two algorithms never share a socket), and every
//! variable-length run is length-prefixed and validated — `decode_body`
//! is total over arbitrary bytes, returning `WireError` rather than
//! panicking, because the channel fault model makes arbitrary bytes a
//! legal input.

use crate::{Alg1Msg, Alg3Msg, SaveEntry, TaskRef};
use sss_types::{SnapshotView, VectorClock, WireError, WireMsg, WireReader, WireWriter};
use std::sync::Arc;

impl WireMsg for Alg1Msg {
    fn encode_body(&self, w: &mut WireWriter<'_>) {
        match self {
            Alg1Msg::Write { reg } => {
                w.u8(0);
                w.cells(reg.n(), reg.iter().map(|(_, c)| c));
            }
            Alg1Msg::WriteAck { reg } => {
                w.u8(1);
                w.cells(reg.n(), reg.iter().map(|(_, c)| c));
            }
            Alg1Msg::Snapshot { reg, ssn } => {
                w.u8(2);
                w.u64(*ssn);
                w.cells(reg.n(), reg.iter().map(|(_, c)| c));
            }
            Alg1Msg::SnapshotAck { reg, ssn } => {
                w.u8(3);
                w.u64(*ssn);
                w.cells(reg.n(), reg.iter().map(|(_, c)| c));
            }
            Alg1Msg::Gossip { cell } => {
                w.u8(4);
                w.cell(*cell);
            }
        }
    }

    fn decode_body(r: &mut WireReader<'_>, n: usize) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(Alg1Msg::Write { reg: r.payload(n)? }),
            1 => Ok(Alg1Msg::WriteAck { reg: r.payload(n)? }),
            2 => {
                let ssn = r.u64()?;
                Ok(Alg1Msg::Snapshot {
                    reg: r.payload(n)?,
                    ssn,
                })
            }
            3 => {
                let ssn = r.u64()?;
                Ok(Alg1Msg::SnapshotAck {
                    reg: r.payload(n)?,
                    ssn,
                })
            }
            4 => Ok(Alg1Msg::Gossip { cell: r.cell()? }),
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// A node index carried inside a body: bounds-checked at decode so no
/// downstream array access can panic on a forged or future-version frame.
fn node_index(r: &mut WireReader<'_>, n: usize) -> Result<usize, WireError> {
    let k = r.u16()? as usize;
    if k >= n {
        return Err(WireError::BadNode);
    }
    Ok(k)
}

fn encode_task(w: &mut WireWriter<'_>, t: &TaskRef) {
    w.u16(t.node as u16);
    w.u64(t.sns);
    match &t.vc {
        None => w.u8(0),
        Some(vc) => {
            w.u8(1);
            w.clock(vc.components());
        }
    }
}

fn decode_task(r: &mut WireReader<'_>, n: usize) -> Result<TaskRef, WireError> {
    let node = node_index(r, n)?;
    let sns = r.u64()?;
    let vc = match r.u8()? {
        0 => None,
        1 => Some(VectorClock::from_components(r.clock_components(n)?)),
        _ => return Err(WireError::BadLength),
    };
    Ok(TaskRef { node, sns, vc })
}

fn encode_save_entry(w: &mut WireWriter<'_>, e: &SaveEntry) {
    w.u16(e.node as u16);
    w.u64(e.sns);
    w.cells(e.view.n(), e.view.iter().map(|(_, c)| c));
}

fn decode_save_entry(r: &mut WireReader<'_>, n: usize) -> Result<SaveEntry, WireError> {
    let node = node_index(r, n)?;
    let sns = r.u64()?;
    let view: SnapshotView = r.cells(n)?;
    Ok(SaveEntry { node, sns, view })
}

impl WireMsg for Alg3Msg {
    fn encode_body(&self, w: &mut WireWriter<'_>) {
        match self {
            Alg3Msg::Write { reg } => {
                w.u8(0);
                w.cells(reg.n(), reg.iter().map(|(_, c)| c));
            }
            Alg3Msg::WriteAck { reg } => {
                w.u8(1);
                w.cells(reg.n(), reg.iter().map(|(_, c)| c));
            }
            Alg3Msg::Snapshot { tasks, reg, ssn } => {
                w.u8(2);
                w.u64(*ssn);
                w.u16(tasks.len() as u16);
                for t in tasks.iter() {
                    encode_task(w, t);
                }
                w.cells(reg.n(), reg.iter().map(|(_, c)| c));
            }
            Alg3Msg::SnapshotAck { reg, ssn } => {
                w.u8(3);
                w.u64(*ssn);
                w.cells(reg.n(), reg.iter().map(|(_, c)| c));
            }
            Alg3Msg::Save { entries } => {
                w.u8(4);
                w.u16(entries.len() as u16);
                for e in entries.iter() {
                    encode_save_entry(w, e);
                }
            }
            Alg3Msg::SaveAck { ids } => {
                w.u8(5);
                w.u16(ids.len() as u16);
                for &(node, sns) in ids {
                    w.u16(node as u16);
                    w.u64(sns);
                }
            }
            Alg3Msg::Gossip { cell, pnd_sns } => {
                w.u8(6);
                w.cell(*cell);
                w.u64(*pnd_sns);
            }
        }
    }

    fn decode_body(r: &mut WireReader<'_>, n: usize) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(Alg3Msg::Write { reg: r.payload(n)? }),
            1 => Ok(Alg3Msg::WriteAck { reg: r.payload(n)? }),
            2 => {
                let ssn = r.u64()?;
                let count = r.u16()? as usize;
                let mut tasks = Vec::new();
                for _ in 0..count {
                    tasks.push(decode_task(r, n)?);
                }
                Ok(Alg3Msg::Snapshot {
                    tasks: Arc::new(tasks),
                    reg: r.payload(n)?,
                    ssn,
                })
            }
            3 => {
                let ssn = r.u64()?;
                Ok(Alg3Msg::SnapshotAck {
                    reg: r.payload(n)?,
                    ssn,
                })
            }
            4 => {
                let count = r.u16()? as usize;
                let mut entries = Vec::new();
                for _ in 0..count {
                    entries.push(decode_save_entry(r, n)?);
                }
                Ok(Alg3Msg::Save {
                    entries: Arc::new(entries),
                })
            }
            5 => {
                let count = r.u16()? as usize;
                let mut ids = Vec::new();
                for _ in 0..count {
                    let node = node_index(r, n)?;
                    ids.push((node, r.u64()?));
                }
                Ok(Alg3Msg::SaveAck { ids })
            }
            6 => {
                let cell = r.cell()?;
                Ok(Alg3Msg::Gossip {
                    cell,
                    pnd_sns: r.u64()?,
                })
            }
            t => Err(WireError::BadTag(t)),
        }
    }
}
