//! Algorithm 1: the self-stabilizing **non-blocking** snapshot object.
//!
//! This is the paper's Algorithm 1 — Delporte-Gallet et al.'s non-blocking
//! algorithm plus the boxed self-stabilization additions:
//!
//! * every `do forever` iteration discards snapshot acknowledgements whose
//!   `ssn` does not match the current query (line 9, realised by the
//!   [`AckTracker`] tag check),
//! * enforces `ts ≥ reg[i].ts` (line 10),
//! * and gossips `reg[k]` to each `p_k` (line 11), whose handler merges
//!   into the receiver's *own* entry and timestamp (line 25) — this is what
//!   lets a node whose `ts` was corrupted *downwards* catch up with what
//!   the rest of the system believes it has written, restoring Theorem 1's
//!   invariants within `O(1)` asynchronous cycles;
//! * the `merge` macro additionally folds arriving `reg[i].ts` values into
//!   `ts` (line 6).
//!
//! Client-side loops become phase state machines: the `repeat broadcast …
//! until majority` of the pseudo-code is realised by broadcasting at
//! `invoke` time and re-broadcasting on every `do forever` iteration until
//! the majority condition holds, which is exactly how the paper's loops
//! survive fair packet loss.

use rand::RngCore;
use sss_quorum::AckTracker;
use sss_types::{
    cell_bits, reg_array_bits, ArbitraryMsg, Effects, MsgKind, NodeId, OpId, OpResponse, Payload,
    ProcessSet, ProtoMsg, Protocol, ProtocolStats, RegArray, SharedReg, SnapshotOp, Tagged, Value,
};
use std::collections::VecDeque;

/// Wire messages of [`Alg1`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Alg1Msg {
    /// Client-side `WRITE(lReg)` broadcast (line 14).
    Write {
        /// The writer's register array at invocation (shared, not copied,
        /// across the broadcast fan-out).
        reg: Payload,
    },
    /// Server-side `WRITEack(reg)` reply (line 28).
    WriteAck {
        /// The server's merged register array.
        reg: Payload,
    },
    /// Client-side `SNAPSHOT(reg, ssn)` broadcast (line 20).
    Snapshot {
        /// The querier's current register array.
        reg: Payload,
        /// The snapshot query index.
        ssn: u64,
    },
    /// Server-side `SNAPSHOTack(reg, ssn)` reply (line 31).
    SnapshotAck {
        /// The server's merged register array.
        reg: Payload,
        /// Echo of the query index.
        ssn: u64,
    },
    /// Self-stabilizing `GOSSIP(reg[k])` (line 11): `p_i` tells `p_k` what
    /// `p_i` believes `p_k`'s register holds.
    Gossip {
        /// The sender's copy of the *receiver's* register cell.
        cell: Tagged,
    },
}

impl ProtoMsg for Alg1Msg {
    fn kind(&self) -> MsgKind {
        match self {
            Alg1Msg::Write { .. } => MsgKind::Write,
            Alg1Msg::WriteAck { .. } => MsgKind::WriteAck,
            Alg1Msg::Snapshot { .. } => MsgKind::Snapshot,
            Alg1Msg::SnapshotAck { .. } => MsgKind::SnapshotAck,
            Alg1Msg::Gossip { .. } => MsgKind::Gossip,
        }
    }

    fn size_bits(&self, nu: u32) -> u64 {
        const HDR: u64 = 64;
        match self {
            Alg1Msg::Write { reg } | Alg1Msg::WriteAck { reg } => HDR + reg_array_bits(reg.n(), nu),
            Alg1Msg::Snapshot { reg, .. } | Alg1Msg::SnapshotAck { reg, .. } => {
                HDR + 64 + reg_array_bits(reg.n(), nu)
            }
            Alg1Msg::Gossip { .. } => HDR + cell_bits(nu),
        }
    }

    /// A Byzantine sender equivocates through gossip: it keeps the index
    /// honest but tells each peer a different value, so honest receivers
    /// adopt conflicting register cells for the liar's entry.
    fn equivocate(&self, rng: &mut dyn RngCore) -> Option<Self> {
        match self {
            Alg1Msg::Gossip { cell } if !cell.is_bottom() => Some(Alg1Msg::Gossip {
                cell: Tagged::new(rng.next_u64() as Value, cell.ts),
            }),
            _ => None,
        }
    }

    /// A Byzantine sender inflates the gossip index to `floor`, driving
    /// honest receivers' timestamps toward `MAXINT` on demand.
    fn inflate_index(&self, floor: u64) -> Option<Self> {
        match self {
            Alg1Msg::Gossip { cell } => Some(Alg1Msg::Gossip {
                cell: Tagged::new(cell.val, cell.ts.max(floor)),
            }),
            _ => None,
        }
    }

    /// Conservative per-link coalescing (see [`ProtoMsg::try_coalesce`]).
    ///
    /// * two `GOSSIP`s merge into their cell join — the handler (line 25)
    ///   only joins the cell into receiver state, so one joined delivery
    ///   is state-equivalent to two sequential ones;
    /// * `WRITE`/`WRITEack` pairs merge when their payloads are
    ///   `⪯`-comparable: the receiver merges the array into its state, so
    ///   delivering only the upper bound reaches the same post-state
    ///   (pointer-equal retransmissions are the common fast case);
    /// * `SNAPSHOT`/`SNAPSHOTack` additionally require equal `ssn`, since
    ///   the querier discards acks whose `ssn` mismatches (line 9) and a
    ///   server echo is tagged by the query it answers.
    ///
    /// Any reply the absorbed message would have triggered is a duplicate
    /// ack, which the `repeat … until majority` client loops already
    /// tolerate losing.
    fn try_coalesce(&mut self, later: &Self) -> bool {
        fn payload_join(mine: &mut Payload, later: &Payload) -> bool {
            if Payload::ptr_eq(mine, later) {
                true
            } else if mine.le(later) {
                *mine = later.clone();
                true
            } else {
                later.le(mine)
            }
        }
        match (self, later) {
            (Alg1Msg::Gossip { cell }, Alg1Msg::Gossip { cell: c2 }) => {
                *cell = cell.join(*c2);
                true
            }
            (Alg1Msg::Write { reg }, Alg1Msg::Write { reg: r2 })
            | (Alg1Msg::WriteAck { reg }, Alg1Msg::WriteAck { reg: r2 }) => payload_join(reg, r2),
            (Alg1Msg::Snapshot { reg, ssn }, Alg1Msg::Snapshot { reg: r2, ssn: s2 })
            | (Alg1Msg::SnapshotAck { reg, ssn }, Alg1Msg::SnapshotAck { reg: r2, ssn: s2 })
                if *ssn == *s2 =>
            {
                payload_join(reg, r2)
            }
            _ => false,
        }
    }
}

impl ArbitraryMsg for Alg1Msg {
    fn arbitrary(rng: &mut dyn RngCore, n: usize, max_index: u64) -> Self {
        let cell = |rng: &mut dyn RngCore| Tagged {
            ts: rng.next_u64() % (max_index + 1),
            val: rng.next_u64(),
        };
        let arr = |rng: &mut dyn RngCore| -> RegArray {
            let mut a = RegArray::bottom(n);
            for k in 0..n {
                a.set(
                    NodeId(k),
                    Tagged {
                        ts: rng.next_u64() % (max_index + 1),
                        val: rng.next_u64(),
                    },
                );
            }
            a
        };
        match rng.next_u32() % 5 {
            0 => Alg1Msg::Write {
                reg: arr(rng).into(),
            },
            1 => Alg1Msg::WriteAck {
                reg: arr(rng).into(),
            },
            2 => Alg1Msg::Snapshot {
                reg: arr(rng).into(),
                ssn: rng.next_u64() % (max_index + 1),
            },
            3 => Alg1Msg::SnapshotAck {
                reg: arr(rng).into(),
                ssn: rng.next_u64() % (max_index + 1),
            },
            _ => Alg1Msg::Gossip { cell: cell(rng) },
        }
    }
}

/// In-progress `write(v)` client state (lines 12–16).
#[derive(Clone, Debug)]
struct WriteOp {
    op: OpId,
    /// Shared with every retransmitted `WRITE` — rebroadcasts are free.
    lreg: Payload,
    acks: ProcessSet,
}

/// In-progress `snapshot()` client state (lines 17–23).
#[derive(Clone, Debug)]
struct SnapOp {
    op: OpId,
    prev: Payload,
    acks: AckTracker,
}

/// One active client operation (a node is a sequential client, so at most
/// one at a time; further invocations queue).
#[derive(Clone, Debug)]
enum Active {
    Write(WriteOp),
    Snap(SnapOp),
}

/// Line 14's covering check: the acker's register array must contain the
/// in-flight write before the ack may count toward the majority. This is
/// what rejects *stale* acks — a delayed `WRITEack` from the previous
/// operation whose payload predates the current write.
#[cfg(not(feature = "planted-mutation"))]
fn covered(lreg: &Payload, ack: &Payload) -> bool {
    lreg.le(ack)
}

/// The deliberately planted protocol defect the chaos engine must catch
/// (`sss-chaos`): accept every ack, covered or not, so a write can reach
/// "majority" on stale acknowledgements from servers that never stored
/// it — a later snapshot may then miss a completed write. Compiled in
/// only under the test-only `planted-mutation` feature, never by default.
#[cfg(feature = "planted-mutation")]
fn covered(_lreg: &Payload, _ack: &Payload) -> bool {
    true
}

/// The self-stabilizing non-blocking snapshot object of the paper's
/// Algorithm 1. See the module docs above for the mapping to pseudo-code.
#[derive(Clone, Debug)]
pub struct Alg1 {
    id: NodeId,
    n: usize,
    /// Write-operation index (line 3).
    ts: u64,
    /// Snapshot-operation index (line 3).
    ssn: u64,
    /// Local copy of all shared registers (line 4), with a cached
    /// outgoing payload so acks between mutations share one allocation.
    reg: SharedReg,
    active: Option<Active>,
    pending: VecDeque<(OpId, SnapshotOp)>,
    /// Gossip every `gossip_every`-th `do forever` iteration (1 = every
    /// iteration, the paper's algorithm; 0 = never — ablation only, which
    /// forfeits transient-fault recovery). The other boxed
    /// self-stabilization lines always run; the fully non-self-stabilizing
    /// baseline lives in `sss-baselines`.
    gossip_every: u64,
    rounds: u64,
}

impl Alg1 {
    /// A fresh instance for node `id` in a system of `n` processes.
    pub fn new(id: NodeId, n: usize) -> Self {
        assert!(id.index() < n, "node id out of range");
        Alg1 {
            id,
            n,
            ts: 0,
            ssn: 0,
            reg: SharedReg::bottom(n),
            active: None,
            pending: VecDeque::new(),
            gossip_every: 1,
            rounds: 0,
        }
    }

    /// Like [`Alg1::new`] but gossiping only every `k`-th iteration
    /// (`k = 0` disables gossip entirely). For the gossip-cadence
    /// ablation: slower gossip means proportionally slower recovery from
    /// transient faults at proportionally lower background traffic.
    pub fn with_gossip_every(id: NodeId, n: usize, k: u64) -> Self {
        let mut a = Alg1::new(id, n);
        a.gossip_every = k;
        a
    }

    /// The node's current register array (for tests and probes).
    pub fn reg(&self) -> &RegArray {
        &self.reg
    }

    /// Current write index `ts`.
    pub fn ts(&self) -> u64 {
        self.ts
    }

    /// Current snapshot query index `ssn`.
    pub fn ssn(&self) -> u64 {
        self.ssn
    }

    /// The `merge(Rec)` macro (lines 5–7) for one received array.
    fn merge(&mut self, from: NodeId, rec: &Payload) {
        self.ts = self
            .ts
            .max(self.reg.get(self.id).ts)
            .max(rec.get(self.id).ts);
        self.reg.merge_from_payload(from, rec);
    }

    fn start_op(&mut self, op_id: OpId, op: SnapshotOp, fx: &mut Effects<Alg1Msg>) {
        match op {
            SnapshotOp::Write(v) => self.start_write(op_id, v, fx),
            SnapshotOp::Snapshot => self.start_snapshot_iteration(op_id, fx),
        }
    }

    /// Lines 12–14: allocate the next timestamp, install the value locally,
    /// broadcast `WRITE(lReg)`.
    fn start_write(&mut self, op_id: OpId, v: Value, fx: &mut Effects<Alg1Msg>) {
        self.ts += 1;
        self.reg.set(self.id, Tagged::new(v, self.ts));
        let lreg = self.reg.payload();
        fx.broadcast(self.n, &Alg1Msg::Write { reg: lreg.clone() });
        self.active = Some(Active::Write(WriteOp {
            op: op_id,
            lreg,
            acks: ProcessSet::new(self.n),
        }));
    }

    /// Lines 19–20: one iteration of the outer repeat-until — record
    /// `prev`, bump `ssn`, broadcast `SNAPSHOT(reg, ssn)`.
    fn start_snapshot_iteration(&mut self, op_id: OpId, fx: &mut Effects<Alg1Msg>) {
        let prev = self.reg.payload();
        self.ssn += 1;
        let mut acks = AckTracker::new(self.n);
        acks.arm(self.ssn);
        fx.broadcast(
            self.n,
            &Alg1Msg::Snapshot {
                reg: prev.clone(),
                ssn: self.ssn,
            },
        );
        self.active = Some(Active::Snap(SnapOp {
            op: op_id,
            prev,
            acks,
        }));
    }

    fn finish_active(&mut self, resp: OpResponse, fx: &mut Effects<Alg1Msg>) {
        let op = match self.active.take() {
            Some(Active::Write(w)) => w.op,
            Some(Active::Snap(s)) => s.op,
            None => unreachable!("finish without active op"),
        };
        fx.complete(op, resp);
        if let Some((id, next)) = self.pending.pop_front() {
            self.start_op(id, next, fx);
        }
    }
}

impl Protocol for Alg1 {
    type Msg = Alg1Msg;

    fn id(&self) -> NodeId {
        self.id
    }

    fn n(&self) -> usize {
        self.n
    }

    /// Lines 8–11 plus client-side retransmission.
    fn on_round(&mut self, fx: &mut Effects<Alg1Msg>) {
        self.rounds += 1;
        // Line 10: ts may never lag the node's own register entry.
        self.ts = self.ts.max(self.reg.get(self.id).ts);
        // Line 11: gossip reg[k] to p_k (every gossip_every-th iteration).
        if self.gossip_every > 0 && self.rounds.is_multiple_of(self.gossip_every) {
            for k in 0..self.n {
                if k != self.id.index() {
                    fx.send(
                        NodeId(k),
                        Alg1Msg::Gossip {
                            cell: self.reg.get(NodeId(k)),
                        },
                    );
                }
            }
        }
        // Re-issue the in-progress client broadcast (the pseudo-code's
        // `repeat broadcast …`).
        match &mut self.active {
            Some(Active::Write(w)) => {
                let msg = Alg1Msg::Write {
                    reg: w.lreg.clone(),
                };
                fx.broadcast(self.n, &msg);
            }
            Some(Active::Snap(s)) => {
                let msg = Alg1Msg::Snapshot {
                    reg: self.reg.payload(),
                    ssn: s.acks.tag(),
                };
                fx.broadcast(self.n, &msg);
            }
            None => {}
        }
    }

    fn on_message(&mut self, from: NodeId, msg: Alg1Msg, fx: &mut Effects<Alg1Msg>) {
        match msg {
            // Lines 26–28 (server side of write).
            Alg1Msg::Write { reg } => {
                self.reg.merge_from_payload(from, &reg);
                fx.send(
                    from,
                    Alg1Msg::WriteAck {
                        reg: self.reg.payload(),
                    },
                );
            }
            // Lines 29–31 (server side of snapshot).
            Alg1Msg::Snapshot { reg, ssn } => {
                self.reg.merge_from_payload(from, &reg);
                fx.send(
                    from,
                    Alg1Msg::SnapshotAck {
                        reg: self.reg.payload(),
                        ssn,
                    },
                );
            }
            // Line 14's until-condition plus line 15's merge. Duplicate
            // acks (one per retransmitted WRITE) are rejected before the
            // O(n) covering check.
            Alg1Msg::WriteAck { reg } => {
                let accepted = match &mut self.active {
                    Some(Active::Write(w)) if !w.acks.contains(from) && covered(&w.lreg, &reg) => {
                        w.acks.insert(from)
                    }
                    _ => false,
                };
                if accepted {
                    self.merge(from, &reg);
                    let majority = matches!(
                        &self.active,
                        Some(Active::Write(w)) if w.acks.is_majority()
                    );
                    if majority {
                        self.finish_active(OpResponse::WriteDone, fx);
                    }
                }
            }
            // Line 20's until-condition plus lines 21–22.
            Alg1Msg::SnapshotAck { reg, ssn } => {
                let accepted = match &mut self.active {
                    Some(Active::Snap(s)) => s.acks.accept(from, ssn),
                    _ => false,
                };
                if accepted {
                    self.merge(from, &reg);
                    let majority = match &self.active {
                        Some(Active::Snap(s)) if s.acks.has_majority() => {
                            Some((s.op, s.prev.clone()))
                        }
                        _ => None,
                    };
                    if let Some((op, prev)) = majority {
                        if *prev == *self.reg {
                            // Line 23: return(reg).
                            let view = (&*self.reg).into();
                            self.finish_active(OpResponse::Snapshot(view), fx);
                        } else {
                            // Concurrent writes moved reg: iterate again.
                            self.start_snapshot_iteration(op, fx);
                        }
                    }
                }
            }
            // Lines 24–25 (gossip handler): merge into own entry and ts.
            Alg1Msg::Gossip { cell } => {
                self.reg.join_cell(self.id, cell);
                self.ts = self.ts.max(self.reg.get(self.id).ts);
            }
        }
    }

    fn invoke(&mut self, id: OpId, op: SnapshotOp, fx: &mut Effects<Alg1Msg>) {
        if self.active.is_some() {
            self.pending.push_back((id, op));
        } else {
            self.start_op(id, op, fx);
        }
    }

    fn is_busy(&self) -> bool {
        self.active.is_some() || !self.pending.is_empty()
    }

    /// Transient fault: every soft variable gets an arbitrary value. The
    /// identities of in-progress operations are preserved (they belong to
    /// the *client*, whose bookkeeping the fault model does not touch), but
    /// all protocol-internal state — indices, register copies, collected
    /// acknowledgements, the snapshot's `prev` — is scrambled.
    fn corrupt(&mut self, rng: &mut dyn RngCore) {
        const M: u64 = 1 << 20;
        self.ts = rng.next_u64() % M;
        self.ssn = rng.next_u64() % M;
        for k in 0..self.n {
            self.reg.set(
                NodeId(k),
                Tagged {
                    ts: rng.next_u64() % M,
                    val: rng.next_u64(),
                },
            );
        }
        match &mut self.active {
            Some(Active::Write(w)) => {
                w.acks.clear();
                w.lreg = self.reg.payload();
            }
            Some(Active::Snap(s)) => {
                let tag = rng.next_u64() % M;
                s.acks.arm(tag);
                s.prev = self.reg.payload();
            }
            None => {}
        }
    }

    fn restart(&mut self) {
        let (id, n, k) = (self.id, self.n, self.gossip_every);
        *self = Alg1::with_gossip_every(id, n, k);
    }

    /// Theorem 1's node-local invariant: `ts` is not smaller than the
    /// node's own register timestamp.
    fn local_invariants_hold(&self) -> bool {
        self.ts >= self.reg.get(self.id).ts
    }

    fn stats(&self) -> ProtocolStats {
        ProtocolStats {
            rounds: self.rounds,
            write_index: self.ts,
            snapshot_index: self.ssn,
            stale_epoch_dropped: 0,
        }
    }
}

impl crate::bounded::HasIndices for Alg1 {
    fn max_index(&self) -> u64 {
        let reg_max = self.reg.iter().map(|(_, c)| c.ts).max().unwrap_or(0);
        self.ts.max(self.ssn).max(reg_max)
    }

    fn export_reg(&self) -> RegArray {
        self.reg.to_reg()
    }

    fn install_reset(&mut self, reg: RegArray) {
        self.ts = reg.get(self.id).ts;
        self.ssn = 0;
        self.reg = reg.into();
        self.active = None;
        self.pending.clear();
    }

    fn drain_ops(&mut self) -> Vec<OpId> {
        let mut ids = Vec::new();
        match self.active.take() {
            Some(Active::Write(w)) => ids.push(w.op),
            Some(Active::Snap(s)) => ids.push(s.op),
            None => {}
        }
        ids.extend(self.pending.drain(..).map(|(id, _)| id));
        ids
    }

    fn seed_indices(&mut self, base: u64) {
        self.ts = self.ts.max(base);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fx() -> Effects<Alg1Msg> {
        Effects::new()
    }

    #[test]
    fn write_installs_value_and_broadcasts() {
        let mut a = Alg1::new(NodeId(0), 3);
        let mut e = fx();
        a.invoke(OpId(1), SnapshotOp::Write(42), &mut e);
        assert_eq!(a.ts(), 1);
        assert_eq!(a.reg().get(NodeId(0)), Tagged::new(42, 1));
        assert_eq!(e.take_sends().len(), 3, "WRITE broadcast to all incl self");
        assert!(a.is_busy());
    }

    #[test]
    fn write_completes_on_majority_of_covering_acks() {
        let mut a = Alg1::new(NodeId(0), 3);
        let mut e = fx();
        a.invoke(OpId(1), SnapshotOp::Write(42), &mut e);
        let lreg: Payload = a.reg().clone().into();
        // Ack from p1 with a covering array.
        a.on_message(NodeId(1), Alg1Msg::WriteAck { reg: lreg.clone() }, &mut e);
        assert!(a.is_busy(), "one ack is not a majority of 3");
        a.on_message(NodeId(2), Alg1Msg::WriteAck { reg: lreg }, &mut e);
        let done = e.take_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0], (OpId(1), OpResponse::WriteDone));
        assert!(!a.is_busy());
    }

    #[test]
    fn write_ignores_non_covering_acks() {
        let mut a = Alg1::new(NodeId(0), 3);
        let mut e = fx();
        a.invoke(OpId(1), SnapshotOp::Write(42), &mut e);
        // A stale ack that does not include the write.
        let stale: Payload = RegArray::bottom(3).into();
        a.on_message(NodeId(1), Alg1Msg::WriteAck { reg: stale.clone() }, &mut e);
        a.on_message(NodeId(2), Alg1Msg::WriteAck { reg: stale }, &mut e);
        assert!(e.take_completions().is_empty());
        assert!(a.is_busy());
    }

    #[test]
    fn server_side_write_merges_and_acks() {
        let mut a = Alg1::new(NodeId(1), 3);
        let mut e = fx();
        let mut incoming = RegArray::bottom(3);
        incoming.set(NodeId(0), Tagged::new(5, 1));
        a.on_message(
            NodeId(0),
            Alg1Msg::Write {
                reg: incoming.into(),
            },
            &mut e,
        );
        assert_eq!(a.reg().get(NodeId(0)), Tagged::new(5, 1));
        let sends = e.take_sends();
        assert_eq!(sends.len(), 1);
        assert_eq!(sends[0].0, NodeId(0));
        assert!(matches!(sends[0].1, Alg1Msg::WriteAck { .. }));
    }

    #[test]
    fn snapshot_completes_when_stable() {
        let mut a = Alg1::new(NodeId(0), 3);
        let mut e = fx();
        a.invoke(OpId(7), SnapshotOp::Snapshot, &mut e);
        assert_eq!(a.ssn(), 1);
        let reg: Payload = a.reg().clone().into();
        a.on_message(
            NodeId(1),
            Alg1Msg::SnapshotAck {
                reg: reg.clone(),
                ssn: 1,
            },
            &mut e,
        );
        a.on_message(NodeId(2), Alg1Msg::SnapshotAck { reg, ssn: 1 }, &mut e);
        let done = e.take_completions();
        assert_eq!(done.len(), 1);
        match &done[0].1 {
            OpResponse::Snapshot(v) => assert_eq!(v.values(), vec![None, None, None]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn snapshot_retries_when_disturbed_by_a_write() {
        let mut a = Alg1::new(NodeId(0), 3);
        let mut e = fx();
        a.invoke(OpId(7), SnapshotOp::Snapshot, &mut e);
        // Acks that carry a newer write by p1: prev != reg after merge.
        let mut moved = a.reg().clone();
        moved.set(NodeId(1), Tagged::new(9, 1));
        let moved: Payload = moved.into();
        a.on_message(
            NodeId(1),
            Alg1Msg::SnapshotAck {
                reg: moved.clone(),
                ssn: 1,
            },
            &mut e,
        );
        a.on_message(
            NodeId(2),
            Alg1Msg::SnapshotAck {
                reg: moved.clone(),
                ssn: 1,
            },
            &mut e,
        );
        assert!(e.take_completions().is_empty(), "must iterate again");
        assert_eq!(a.ssn(), 2, "second query attempt armed");
        // Second attempt with stable values completes.
        let cur: Payload = a.reg().clone().into();
        a.on_message(
            NodeId(1),
            Alg1Msg::SnapshotAck {
                reg: cur.clone(),
                ssn: 2,
            },
            &mut e,
        );
        a.on_message(NodeId(2), Alg1Msg::SnapshotAck { reg: cur, ssn: 2 }, &mut e);
        let done = e.take_completions();
        assert_eq!(done.len(), 1);
        match &done[0].1 {
            OpResponse::Snapshot(v) => assert_eq!(v.value_of(NodeId(1)), Some(9)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn stale_ssn_acks_are_ignored() {
        let mut a = Alg1::new(NodeId(0), 3);
        let mut e = fx();
        a.invoke(OpId(7), SnapshotOp::Snapshot, &mut e);
        let reg: Payload = a.reg().clone().into();
        a.on_message(
            NodeId(1),
            Alg1Msg::SnapshotAck {
                reg: reg.clone(),
                ssn: 99,
            },
            &mut e,
        );
        a.on_message(NodeId(2), Alg1Msg::SnapshotAck { reg, ssn: 0 }, &mut e);
        assert!(e.take_completions().is_empty());
    }

    #[test]
    fn gossip_restores_corrupted_ts() {
        let mut a = Alg1::new(NodeId(1), 3);
        // Transient fault zeroed ts but the system believes p1 wrote ts=5.
        let mut e = fx();
        a.on_message(
            NodeId(0),
            Alg1Msg::Gossip {
                cell: Tagged::new(7, 5),
            },
            &mut e,
        );
        assert_eq!(a.ts(), 5, "ts caught up via gossip");
        assert_eq!(a.reg().get(NodeId(1)), Tagged::new(7, 5));
        // Next write must not reuse a stale index.
        a.invoke(OpId(1), SnapshotOp::Write(1), &mut e);
        assert_eq!(a.reg().get(NodeId(1)).ts, 6);
    }

    #[test]
    fn round_enforces_ts_floor_and_gossips() {
        let mut a = Alg1::new(NodeId(0), 3);
        a.reg.set(NodeId(0), Tagged::new(3, 10)); // simulate corrupt reg > ts
        let mut e = fx();
        a.on_round(&mut e);
        assert_eq!(a.ts(), 10);
        let sends = e.take_sends();
        let gossips = sends
            .iter()
            .filter(|(_, m)| matches!(m, Alg1Msg::Gossip { .. }))
            .count();
        assert_eq!(gossips, 2, "gossip to everyone but self");
    }

    #[test]
    fn queued_ops_run_in_order() {
        let mut a = Alg1::new(NodeId(0), 3);
        let mut e = fx();
        a.invoke(OpId(1), SnapshotOp::Write(1), &mut e);
        a.invoke(OpId(2), SnapshotOp::Write(2), &mut e);
        let lreg: Payload = a.reg().clone().into();
        a.on_message(NodeId(1), Alg1Msg::WriteAck { reg: lreg.clone() }, &mut e);
        a.on_message(NodeId(2), Alg1Msg::WriteAck { reg: lreg }, &mut e);
        let done = e.take_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, OpId(1));
        assert!(a.is_busy(), "second write started");
        assert_eq!(a.ts(), 2);
    }

    #[test]
    fn corrupt_then_local_invariant_repair() {
        let mut a = Alg1::new(NodeId(0), 3);
        let mut rng = rand::rngs::mock::StepRng::new(0xDEAD_BEEF, 0x9E37_79B9);
        a.corrupt(&mut rng);
        // The do-forever loop restores the local invariant in one step.
        let mut e = fx();
        a.on_round(&mut e);
        assert!(a.local_invariants_hold());
    }

    #[test]
    fn restart_reinitializes() {
        let mut a = Alg1::new(NodeId(2), 3);
        let mut e = fx();
        a.invoke(OpId(1), SnapshotOp::Write(3), &mut e);
        a.restart();
        assert_eq!(a.ts(), 0);
        assert!(!a.is_busy());
        assert_eq!(a.reg(), &RegArray::bottom(3));
    }

    #[test]
    fn message_sizes_follow_the_paper() {
        let reg = RegArray::bottom(5);
        let w = Alg1Msg::Write {
            reg: reg.clone().into(),
        };
        let g = Alg1Msg::Gossip {
            cell: Tagged::new(0, 1),
        };
        // WRITE is O(ν·n); GOSSIP is O(ν), independent of n.
        assert_eq!(w.size_bits(64), 64 + 5 * 128);
        assert_eq!(g.size_bits(64), 64 + 128);
        assert!(w.kind() == MsgKind::Write && g.kind().is_gossip());
    }
}
