//! The consensus-based global reset of Section 5.
//!
//! When an operation index reaches `MAXINT`, the paper prescribes:
//! *Step 1* — disable new operations and gossip maximal indices, merging,
//! until all nodes share the same maxima; *Step 2* — run a consensus-based
//! global reset that wraps each operation index to its initial value while
//! keeping the register *values*; then re-enable operations.
//!
//! Both steps need every node to participate, which is why the paper (and
//! this implementation) assumes *seldom fairness*: reaching `MAXINT` can
//! only happen after a transient fault (with 64-bit counters a legitimate
//! execution would take centuries), so requiring that all nodes are
//! eventually alive *during a reset* is an assumption used almost never.
//!
//! The coordinator (the lowest node id, who is alive by the fairness
//! assumption) drives two retransmitted phases:
//!
//! 1. **Sync** — collect every node's full register array and merge them;
//!    this subsumes the paper's "gossip the maximal indices until they
//!    agree": after the merge the coordinator holds the maximum of every
//!    register and index.
//! 2. **Install** — distribute the canonical wrapped array (every non-`⊥`
//!    cell re-stamped with timestamp 1) together with the next epoch
//!    number; each node installs it, zeroes its indices, and moves to the
//!    new epoch. Messages from older epochs are discarded by the
//!    [`Bounded`](crate::Bounded) wrapper, so no pre-reset timestamp can
//!    leak into the new epoch.

use sss_types::{NodeId, ProcessSet, RegArray, Tagged};

/// Wire messages of the global-reset protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResetMsg {
    /// Any node that noticed an index at `MAXINT` asks for a reset into
    /// `epoch` (current + 1).
    Request {
        /// The epoch the requester wants to move to.
        epoch: u64,
    },
    /// Coordinator → all: send me your register array (phase 1).
    SyncReq {
        /// The epoch being established.
        epoch: u64,
    },
    /// Node → coordinator: my register array (phase 1 reply).
    SyncResp {
        /// Echo of the epoch.
        epoch: u64,
        /// The replier's register array.
        reg: RegArray,
    },
    /// Coordinator → all: install this canonical array (phase 2).
    Install {
        /// The epoch being established.
        epoch: u64,
        /// The canonical wrapped register array.
        reg: RegArray,
    },
    /// Node → coordinator: installed (phase 2 reply).
    InstallAck {
        /// Echo of the epoch.
        epoch: u64,
    },
}

/// Coordinator-side state of one reset. Normally only the lowest node id
/// runs it; under the hardened wrapper a deadline rotates coordination to
/// the next id when the current coordinator is crashed or cut off (see
/// the [`Bounded`](crate::Bounded) module docs).
#[derive(Clone, Debug)]
pub struct ResetState {
    /// The epoch being established.
    pub epoch: u64,
    /// Merged registers collected so far.
    pub merged: RegArray,
    /// Nodes whose `SyncResp` arrived.
    pub synced: ProcessSet,
    /// Canonical array, once phase 2 started.
    pub canonical: Option<RegArray>,
    /// Nodes whose `InstallAck` arrived.
    pub installed: ProcessSet,
}

impl ResetState {
    /// Starts coordinating a reset into `epoch` from the local `reg`.
    pub fn new(epoch: u64, local_reg: RegArray, me: NodeId) -> Self {
        let n = local_reg.n();
        let mut synced = ProcessSet::new(n);
        synced.insert(me);
        ResetState {
            epoch,
            merged: local_reg,
            synced,
            canonical: None,
            installed: ProcessSet::new(n),
        }
    }

    /// Records a `SyncResp`; returns `true` once every node has synced.
    pub fn on_sync(&mut self, from: NodeId, reg: &RegArray) -> bool {
        self.merged.merge_from(reg);
        self.synced.insert(from);
        self.synced.len() == self.merged.n()
    }

    /// Computes the canonical wrapped array: values kept, non-`⊥`
    /// timestamps re-stamped to 1.
    pub fn make_canonical(&mut self) -> RegArray {
        let canonical: RegArray = self
            .merged
            .iter()
            .map(|(_, cell)| {
                if cell.is_bottom() {
                    cell
                } else {
                    Tagged::new(cell.val, 1)
                }
            })
            .collect();
        self.canonical = Some(canonical.clone());
        canonical
    }

    /// Records an `InstallAck`; returns `true` once every node installed.
    pub fn on_install_ack(&mut self, from: NodeId) -> bool {
        self.installed.insert(from);
        self.installed.len() == self.merged.n()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg(ts: &[u64]) -> RegArray {
        ts.iter()
            .map(|&t| {
                if t == 0 {
                    Tagged::default()
                } else {
                    Tagged::new(t * 10, t)
                }
            })
            .collect()
    }

    #[test]
    fn sync_collects_all_nodes() {
        let mut st = ResetState::new(2, reg(&[5, 0, 0]), NodeId(0));
        assert!(!st.on_sync(NodeId(1), &reg(&[0, 7, 0])));
        assert!(st.on_sync(NodeId(2), &reg(&[0, 0, 9])));
        assert_eq!(st.merged, reg(&[5, 7, 9]));
    }

    #[test]
    fn canonical_keeps_values_wraps_timestamps() {
        let mut st = ResetState::new(2, reg(&[5, 0, 9]), NodeId(0));
        let canon = st.make_canonical();
        assert_eq!(canon.get(NodeId(0)), Tagged::new(50, 1), "value kept");
        assert!(canon.get(NodeId(1)).is_bottom(), "⊥ stays ⊥");
        assert_eq!(canon.get(NodeId(2)), Tagged::new(90, 1));
    }

    #[test]
    fn install_waits_for_everyone() {
        let mut st = ResetState::new(2, reg(&[1, 1, 1]), NodeId(0));
        assert!(!st.on_install_ack(NodeId(0)));
        assert!(!st.on_install_ack(NodeId(1)));
        assert!(st.on_install_ack(NodeId(2)));
    }
}
