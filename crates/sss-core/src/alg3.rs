//! Algorithm 3: the self-stabilizing **always-terminating** snapshot
//! object with the `δ` latency/communication trade-off.
//!
//! # Mapping from the paper's pseudo-code
//!
//! * `pndTsk[k] = (sns, vc, fnl)` (line 68) → [`PndEntry`];
//! * the `VC` macro (line 69) → [`RegArray::vector_clock`];
//! * the `Δ` macro (line 70) → [`Alg3::delta_set`];
//! * `safeReg(A)` (line 71) → the [`BasePhase::SaveReg`] phase: broadcast
//!   `SAVE(A)` until a majority acknowledges the exact id set;
//! * the `do forever` (lines 73–80) → [`Protocol::on_round`]: stale-ack
//!   cleanup (74, via the [`AckTracker`] tag), index floors (75),
//!   vector-clock sanitation (76), own-entry resynchronisation (77),
//!   gossip (78), write-before-snapshot scheduling (79–80);
//! * `baseWrite` (line 84) → the write phase, identical to Algorithm 1's;
//! * `baseSnapshot(S)` (lines 85–94) → the [`BaseSnap`] state machine:
//!   an outer iteration arms a fresh `ssn`, records `prev`, and broadcasts
//!   `SNAPSHOT(S∩Δ, reg, ssn)` until the intersection empties or a
//!   majority acknowledges; on a clean double read (`prev = reg`) results
//!   are written to the safe register, otherwise the own task samples its
//!   vector clock (line 93) so helpers can count concurrent writes
//!   against `δ`;
//! * the server handlers (lines 95–107) → [`Protocol::on_message`],
//!   including the result forwarding of lines 106–107 (a server knowing
//!   the result of a requested task pushes a `SAVE` at the requester).
//!
//! # The role of `δ`
//!
//! `δ = 0`: every known unfinished task is in `Δ` immediately, all nodes
//! help all tasks, writes are deferred while snapshots run — the behaviour
//! (and `O(n²)` message cost) of Delporte-Gallet et al.'s Algorithm 2.
//!
//! `δ > 0`: a remote task enters `Δ` only after its sampled vector clock
//! trails the local one by at least `δ` write operations. Until then the
//! initiator queries alone at `O(n)` messages per attempt; a snapshot
//! disturbed by at least `δ` concurrent writes recruits every node, which
//! blocks writes long enough to terminate — the `O(δ)`-cycle latency bound
//! of Theorem 3, and at least `δ` writes proceed between any two such
//! blocking periods.

use rand::RngCore;
use sss_quorum::AckTracker;
use sss_types::{
    cell_bits, reg_array_bits, ArbitraryMsg, Effects, MsgKind, NodeId, OpId, OpResponse, Payload,
    ProcessSet, ProtoMsg, Protocol, ProtocolStats, RegArray, SharedReg, SnapshotOp, SnapshotView,
    Tagged, Value, VectorClock,
};
use std::collections::VecDeque;
use std::sync::Arc;

/// Configuration of [`Alg3`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Alg3Config {
    /// The paper's input parameter `δ`: the number of observed concurrent
    /// writes after which writes block temporarily so snapshots terminate.
    pub delta: u64,
}

/// One entry of the `pndTsk` array (line 68): the control state of node
/// `k`'s most recent snapshot task as known locally.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct PndEntry {
    /// Index of the most recent snapshot operation `p_k` initiated that
    /// this node is aware of.
    pub sns: u64,
    /// The vector clock stamped when the task was first observed to run
    /// concurrently with writes (`⊥` until then).
    pub vc: Option<VectorClock>,
    /// The task's result (`⊥` while still running).
    pub fnl: Option<SnapshotView>,
}

/// A task reference carried inside `SNAPSHOT` messages: the elements of
/// `S ∩ Δ` (line 88).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskRef {
    /// The initiating node.
    pub node: usize,
    /// The task's snapshot index.
    pub sns: u64,
    /// The task's sampled vector clock, if any.
    pub vc: Option<VectorClock>,
}

/// One `(k, sns, result)` triple carried inside `SAVE` messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SaveEntry {
    /// The initiating node.
    pub node: usize,
    /// The task's snapshot index.
    pub sns: u64,
    /// The snapshot result being stored.
    pub view: SnapshotView,
}

/// Wire messages of [`Alg3`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Alg3Msg {
    /// `WRITE(lReg)` (line 84 client / 100 server).
    Write {
        /// The writer's register array at invocation.
        reg: Payload,
    },
    /// `WRITEack(reg)` (line 102).
    WriteAck {
        /// The server's merged register array.
        reg: Payload,
    },
    /// `SNAPSHOT(S∩Δ, reg, ssn)` (line 88 client / 103 server).
    Snapshot {
        /// The pending tasks this query is helping (shared across the
        /// broadcast fan-out).
        tasks: Arc<Vec<TaskRef>>,
        /// The querier's register array.
        reg: Payload,
        /// The query index.
        ssn: u64,
    },
    /// `SNAPSHOTack(reg, ssn)` (line 107).
    SnapshotAck {
        /// The server's merged register array.
        reg: Payload,
        /// Echo of the query index.
        ssn: u64,
    },
    /// `SAVE(A)` (line 71 client / 95 server), also used for the result
    /// forwarding of line 107.
    Save {
        /// The results being stored (shared across the broadcast fan-out
        /// and every retransmission).
        entries: Arc<Vec<SaveEntry>>,
    },
    /// `SAVEack({(k,s)})` (line 97).
    SaveAck {
        /// The `(node, sns)` ids whose results were stored.
        ids: Vec<(usize, u64)>,
    },
    /// `GOSSIP(reg[k], pndTsk[k].sns)` (line 78 / 98): `O(ν)` bits.
    Gossip {
        /// The sender's copy of the receiver's register cell.
        cell: Tagged,
        /// The sender's view of the receiver's snapshot-task index.
        pnd_sns: u64,
    },
}

impl ProtoMsg for Alg3Msg {
    fn kind(&self) -> MsgKind {
        match self {
            Alg3Msg::Write { .. } => MsgKind::Write,
            Alg3Msg::WriteAck { .. } => MsgKind::WriteAck,
            Alg3Msg::Snapshot { .. } => MsgKind::Snapshot,
            Alg3Msg::SnapshotAck { .. } => MsgKind::SnapshotAck,
            Alg3Msg::Save { .. } => MsgKind::Save,
            Alg3Msg::SaveAck { .. } => MsgKind::SaveAck,
            Alg3Msg::Gossip { .. } => MsgKind::Gossip,
        }
    }

    fn size_bits(&self, nu: u32) -> u64 {
        const HDR: u64 = 64;
        match self {
            Alg3Msg::Write { reg } | Alg3Msg::WriteAck { reg } => HDR + reg_array_bits(reg.n(), nu),
            Alg3Msg::Snapshot { tasks, reg, .. } => {
                let task_bits: u64 = tasks
                    .iter()
                    .map(|t| 128 + t.vc.as_ref().map_or(0, |v| 64 * v.n() as u64))
                    .sum();
                HDR + 64 + reg_array_bits(reg.n(), nu) + task_bits
            }
            Alg3Msg::SnapshotAck { reg, .. } => HDR + 64 + reg_array_bits(reg.n(), nu),
            Alg3Msg::Save { entries } => {
                HDR + entries
                    .iter()
                    .map(|e| 128 + reg_array_bits(e.view.n(), nu))
                    .sum::<u64>()
            }
            Alg3Msg::SaveAck { ids } => HDR + 128 * ids.len() as u64,
            Alg3Msg::Gossip { .. } => HDR + cell_bits(nu) + 64,
        }
    }

    /// A Byzantine sender equivocates through gossip: honest index,
    /// per-peer conflicting value (see [`Alg1Msg::equivocate`]).
    fn equivocate(&self, rng: &mut dyn RngCore) -> Option<Self> {
        match self {
            Alg3Msg::Gossip { cell, pnd_sns } if !cell.is_bottom() => Some(Alg3Msg::Gossip {
                cell: Tagged::new(rng.next_u64() as Value, cell.ts),
                pnd_sns: *pnd_sns,
            }),
            _ => None,
        }
    }

    /// A Byzantine sender inflates the gossip indices to `floor`,
    /// driving honest receivers' timestamps toward `MAXINT` on demand.
    fn inflate_index(&self, floor: u64) -> Option<Self> {
        match self {
            Alg3Msg::Gossip { cell, pnd_sns } => Some(Alg3Msg::Gossip {
                cell: Tagged::new(cell.val, cell.ts.max(floor)),
                pnd_sns: (*pnd_sns).max(floor),
            }),
            _ => None,
        }
    }

    /// Conservative per-link coalescing (see [`ProtoMsg::try_coalesce`]).
    ///
    /// Mirrors [`Alg1Msg::try_coalesce`](crate::Alg1Msg): gossip joins
    /// (cell join + `pnd_sns` max, exactly what the handler on lines
    /// 78/98 folds in), `⪯`-comparable `WRITE`/`WRITEack` payload
    /// replacement, and equal-`ssn` snapshot traffic. `SAVE`/`SAVEack`
    /// coalesce only as identical retransmissions (shared `Arc` / equal id
    /// sets) — the stored-results plane is not a lattice, so nothing
    /// cleverer is sound.
    fn try_coalesce(&mut self, later: &Self) -> bool {
        fn payload_join(mine: &mut Payload, later: &Payload) -> bool {
            if Payload::ptr_eq(mine, later) {
                true
            } else if mine.le(later) {
                *mine = later.clone();
                true
            } else {
                later.le(mine)
            }
        }
        match (self, later) {
            (
                Alg3Msg::Gossip { cell, pnd_sns },
                Alg3Msg::Gossip {
                    cell: c2,
                    pnd_sns: p2,
                },
            ) => {
                *cell = cell.join(*c2);
                *pnd_sns = (*pnd_sns).max(*p2);
                true
            }
            (Alg3Msg::Write { reg }, Alg3Msg::Write { reg: r2 })
            | (Alg3Msg::WriteAck { reg }, Alg3Msg::WriteAck { reg: r2 }) => payload_join(reg, r2),
            (
                Alg3Msg::Snapshot { tasks, reg, ssn },
                Alg3Msg::Snapshot {
                    tasks: t2,
                    reg: r2,
                    ssn: s2,
                },
            ) if *ssn == *s2 && Arc::ptr_eq(tasks, t2) => payload_join(reg, r2),
            (Alg3Msg::SnapshotAck { reg, ssn }, Alg3Msg::SnapshotAck { reg: r2, ssn: s2 })
                if *ssn == *s2 =>
            {
                payload_join(reg, r2)
            }
            (Alg3Msg::Save { entries }, Alg3Msg::Save { entries: e2 }) => Arc::ptr_eq(entries, e2),
            (Alg3Msg::SaveAck { ids }, Alg3Msg::SaveAck { ids: i2 }) => ids == i2,
            _ => false,
        }
    }
}

impl ArbitraryMsg for Alg3Msg {
    fn arbitrary(rng: &mut dyn RngCore, n: usize, max_index: u64) -> Self {
        let idx = |rng: &mut dyn RngCore| rng.next_u64() % (max_index + 1);
        let arr = |rng: &mut dyn RngCore| -> RegArray {
            let mut a = RegArray::bottom(n);
            for k in 0..n {
                a.set(
                    NodeId(k),
                    Tagged {
                        ts: rng.next_u64() % (max_index + 1),
                        val: rng.next_u64(),
                    },
                );
            }
            a
        };
        match rng.next_u32() % 7 {
            0 => Alg3Msg::Write {
                reg: arr(rng).into(),
            },
            1 => Alg3Msg::WriteAck {
                reg: arr(rng).into(),
            },
            2 => Alg3Msg::Snapshot {
                tasks: Arc::new(vec![TaskRef {
                    node: (rng.next_u32() as usize) % n,
                    sns: idx(rng),
                    vc: None,
                }]),
                reg: arr(rng).into(),
                ssn: idx(rng),
            },
            3 => Alg3Msg::SnapshotAck {
                reg: arr(rng).into(),
                ssn: idx(rng),
            },
            4 => Alg3Msg::Save {
                entries: Arc::new(vec![SaveEntry {
                    node: (rng.next_u32() as usize) % n,
                    sns: idx(rng),
                    view: (&arr(rng)).into(),
                }]),
            },
            5 => Alg3Msg::SaveAck {
                ids: vec![((rng.next_u32() as usize) % n, idx(rng))],
            },
            _ => Alg3Msg::Gossip {
                cell: Tagged {
                    ts: idx(rng),
                    val: rng.next_u64(),
                },
                pnd_sns: idx(rng),
            },
        }
    }
}

/// In-progress `baseWrite` client state.
#[derive(Clone, Debug)]
struct WriteOp {
    op: OpId,
    /// Shared with every retransmitted `WRITE` — rebroadcasts are free.
    lreg: Payload,
    acks: ProcessSet,
}

/// The phase of an in-progress `baseSnapshot` call.
#[derive(Clone, Debug)]
enum BasePhase {
    /// Lines 87–90: broadcasting `SNAPSHOT` and collecting acks.
    Inner,
    /// Line 91 / 71: broadcasting `SAVE(A)` and collecting `SAVEack`s.
    SaveReg {
        entries: Arc<Vec<SaveEntry>>,
        acks: ProcessSet,
    },
}

/// The state of one `baseSnapshot(S)` call (lines 85–94).
#[derive(Clone, Debug)]
struct BaseSnap {
    /// The sampled task set `S`: `(node, sns)` pairs.
    s: Vec<(usize, u64)>,
    /// `prev` of the current outer iteration.
    prev: Payload,
    /// Ack collection for the current `ssn`.
    acks: AckTracker,
    phase: BasePhase,
}

/// The self-stabilizing always-terminating snapshot object of the paper's
/// Algorithm 3. See the module docs above for the pseudo-code mapping.
#[derive(Clone, Debug)]
pub struct Alg3 {
    id: NodeId,
    n: usize,
    cfg: Alg3Config,
    /// Write index (line 68).
    ts: u64,
    /// Snapshot *query* index (line 68).
    ssn: u64,
    /// Snapshot *operation* index (line 68).
    sns: u64,
    /// Local copy of all shared registers, with a cached outgoing
    /// payload so acks between mutations share one allocation.
    reg: SharedReg,
    /// Per-node snapshot-task control state.
    pnd_tsk: Vec<PndEntry>,
    write: Option<WriteOp>,
    write_queue: VecDeque<(OpId, Value)>,
    /// The client operation waiting on `pndTsk[i].fnl` (line 83).
    snap_wait: Option<(OpId, u64)>,
    snap_queue: VecDeque<OpId>,
    base: Option<BaseSnap>,
    rounds: u64,
}

impl Alg3 {
    /// A fresh instance for node `id` of `n` with configuration `cfg`.
    pub fn new(id: NodeId, n: usize, cfg: Alg3Config) -> Self {
        assert!(id.index() < n, "node id out of range");
        Alg3 {
            id,
            n,
            cfg,
            ts: 0,
            ssn: 0,
            sns: 0,
            reg: SharedReg::bottom(n),
            pnd_tsk: vec![PndEntry::default(); n],
            write: None,
            write_queue: VecDeque::new(),
            snap_wait: None,
            snap_queue: VecDeque::new(),
            base: None,
            rounds: 0,
        }
    }

    /// The configured `δ`.
    pub fn delta(&self) -> u64 {
        self.cfg.delta
    }

    /// The node's register array (probes/tests).
    pub fn reg(&self) -> &RegArray {
        &self.reg
    }

    /// The node's pending-task table (probes/tests).
    pub fn pnd_tsk(&self) -> &[PndEntry] {
        &self.pnd_tsk
    }

    /// Current `(ts, ssn, sns)` indices.
    pub fn indices(&self) -> (u64, u64, u64) {
        (self.ts, self.ssn, self.sns)
    }

    /// The `merge(Rec)` macro (line 72) for one received array.
    fn merge(&mut self, rec: &RegArray) {
        self.ts = self
            .ts
            .max(self.reg.get(self.id).ts)
            .max(rec.get(self.id).ts);
        self.reg.merge_from(rec);
    }

    /// The `Δ` macro (line 70): nodes whose pending task currently
    /// qualifies for helping.
    fn delta_set(&self) -> Vec<usize> {
        let vc_now = self.reg.vector_clock();
        let mut out = Vec::new();
        for k in 0..self.n {
            let e = &self.pnd_tsk[k];
            if e.fnl.is_some() || e.sns == 0 {
                continue;
            }
            let qualifies = if k == self.id.index() {
                // Own pending task is always in Δ (the union term).
                true
            } else if self.cfg.delta == 0 {
                true
            } else {
                match &e.vc {
                    Some(vc) => vc_now.progress_since(vc) >= self.cfg.delta,
                    None => false,
                }
            };
            if qualifies {
                out.push(k);
            }
        }
        out
    }

    /// `S ∩ Δ` for the current base call: sampled tasks that still exist
    /// (same `sns`) and still qualify for Δ.
    fn s_cap_delta(&self) -> Vec<(usize, u64)> {
        let Some(base) = &self.base else {
            return Vec::new();
        };
        let delta = self.delta_set();
        base.s
            .iter()
            .copied()
            .filter(|&(k, sns)| self.pnd_tsk[k].sns == sns && delta.contains(&k))
            .collect()
    }

    fn task_refs(&self, tasks: &[(usize, u64)]) -> Vec<TaskRef> {
        tasks
            .iter()
            .map(|&(k, sns)| TaskRef {
                node: k,
                sns,
                vc: self.pnd_tsk[k].vc.clone(),
            })
            .collect()
    }

    // ----- client-side write ------------------------------------------

    fn start_write(&mut self, op: OpId, v: Value, fx: &mut Effects<Alg3Msg>) {
        self.ts += 1;
        self.reg.set(self.id, Tagged::new(v, self.ts));
        let lreg = self.reg.payload();
        fx.broadcast(self.n, &Alg3Msg::Write { reg: lreg.clone() });
        self.write = Some(WriteOp {
            op,
            lreg,
            acks: ProcessSet::new(self.n),
        });
    }

    // ----- client-side snapshot ---------------------------------------

    /// Line 83: allocate the task and wait for `pndTsk[i].fnl`.
    fn start_snapshot(&mut self, op: OpId) {
        self.sns += 1;
        self.pnd_tsk[self.id.index()] = PndEntry {
            sns: self.sns,
            vc: None,
            fnl: None,
        };
        self.snap_wait = Some((op, self.sns));
    }

    /// Completes the waiting `snapshot()` once its result landed in
    /// `pndTsk[i].fnl` (the `wait until` of line 83).
    fn deliver_own_if_ready(&mut self, fx: &mut Effects<Alg3Msg>) {
        let me = self.id.index();
        if let Some((op, sns)) = self.snap_wait {
            let e = &self.pnd_tsk[me];
            if e.sns == sns {
                if let Some(view) = e.fnl.clone() {
                    self.snap_wait = None;
                    fx.complete(op, OpResponse::Snapshot(view));
                    if let Some(next) = self.snap_queue.pop_front() {
                        self.start_snapshot(next);
                    }
                }
            } else if e.sns > sns {
                // A corrupted (larger) sns superseded the waiting task; the
                // client op rides on the new task id instead of hanging.
                self.snap_wait = Some((op, e.sns));
            }
        }
    }

    // ----- baseSnapshot state machine ---------------------------------

    /// Starts `baseSnapshot(Δ)` (line 80).
    fn start_base(&mut self, fx: &mut Effects<Alg3Msg>) {
        let delta = self.delta_set();
        if delta.is_empty() {
            return;
        }
        let s: Vec<(usize, u64)> = delta
            .into_iter()
            .map(|k| (k, self.pnd_tsk[k].sns))
            .collect();
        self.base = Some(BaseSnap {
            s,
            prev: self.reg.payload(),
            acks: AckTracker::new(self.n),
            phase: BasePhase::Inner,
        });
        self.outer_iteration(fx);
    }

    /// Lines 87–88: arm a fresh `ssn`, record `prev`, broadcast.
    fn outer_iteration(&mut self, fx: &mut Effects<Alg3Msg>) {
        self.ssn += 1;
        let cur = self.s_cap_delta();
        let refs = self.task_refs(&cur);
        let snap = self.reg.payload();
        let Some(base) = &mut self.base else { return };
        base.prev = snap.clone();
        base.acks.arm(self.ssn);
        base.phase = BasePhase::Inner;
        let msg = Alg3Msg::Snapshot {
            tasks: Arc::new(refs),
            reg: snap,
            ssn: self.ssn,
        };
        fx.broadcast(self.n, &msg);
    }

    /// The `until` of line 89 plus lines 90–94, evaluated whenever the
    /// inner loop may have finished (majority ack or `S∩Δ` emptied).
    fn check_inner_done(&mut self, fx: &mut Effects<Alg3Msg>) {
        let Some(base) = &self.base else { return };
        if !matches!(base.phase, BasePhase::Inner) {
            return;
        }
        let cur = self.s_cap_delta();
        let majority = base.acks.has_majority();
        if !cur.is_empty() && !majority {
            return;
        }
        // Inner loop done (line 89); merging already happened on arrival.
        let prev_stable = *base.prev == *self.reg;
        if prev_stable && !cur.is_empty() {
            // Line 91: store the double-clean read in the safe register.
            let view: SnapshotView = (&*base.prev).into();
            let entries: Arc<Vec<SaveEntry>> = Arc::new(
                cur.iter()
                    .map(|&(k, _)| SaveEntry {
                        node: k,
                        sns: self.pnd_tsk[k].sns,
                        view: view.clone(),
                    })
                    .collect(),
            );
            let msg = Alg3Msg::Save {
                entries: entries.clone(),
            };
            fx.broadcast(self.n, &msg);
            if let Some(base) = &mut self.base {
                base.phase = BasePhase::SaveReg {
                    entries,
                    acks: ProcessSet::new(self.n),
                };
            }
            return;
        }
        // Line 93: the disturbed own task samples its vector clock.
        let me = self.id.index();
        if cur.iter().any(|&(k, _)| k == me) && self.pnd_tsk[me].vc.is_none() {
            self.pnd_tsk[me].vc = Some(self.reg.vector_clock());
        }
        self.check_outer_done(fx);
    }

    /// The `until` of line 94: either finish the base call or run another
    /// outer iteration.
    fn check_outer_done(&mut self, fx: &mut Effects<Alg3Msg>) {
        let cur = self.s_cap_delta();
        if cur.is_empty() {
            self.base = None;
            return;
        }
        let me = self.id.index();
        let only_own = cur.len() == 1 && cur[0].0 == me;
        if only_own && self.pnd_tsk[me].sns > 0 && self.pnd_tsk[me].fnl.is_none() {
            if let Some(vc) = &self.pnd_tsk[me].vc {
                let progress = self.reg.vector_clock().progress_since(vc);
                if progress >= self.cfg.delta {
                    // Defer: exit baseSnapshot so deferred writes run; Δ
                    // still contains the task, so the next round resumes it.
                    self.base = None;
                    return;
                }
            }
        }
        self.outer_iteration(fx);
    }

    /// Called after any `pndTsk` mutation: tasks may have left `S∩Δ`.
    fn on_tasks_changed(&mut self, fx: &mut Effects<Alg3Msg>) {
        self.deliver_own_if_ready(fx);
        if let Some(base) = &self.base {
            match base.phase {
                BasePhase::Inner => self.check_inner_done(fx),
                BasePhase::SaveReg { .. } => {}
            }
        }
    }

    /// Server side of `SAVE` (lines 95–97): adopt newer results.
    fn apply_save_entries(&mut self, entries: &[SaveEntry]) {
        for e in entries {
            if e.node >= self.n {
                continue; // corrupt index from a transient fault
            }
            let t = &mut self.pnd_tsk[e.node];
            if t.sns < e.sns || (t.sns == e.sns && t.fnl.is_none()) {
                t.sns = e.sns;
                t.fnl = Some(e.view.clone());
            }
        }
    }
}

impl Protocol for Alg3 {
    type Msg = Alg3Msg;

    fn id(&self) -> NodeId {
        self.id
    }

    fn n(&self) -> usize {
        self.n
    }

    /// Lines 73–80.
    fn on_round(&mut self, fx: &mut Effects<Alg3Msg>) {
        self.rounds += 1;
        let me = self.id.index();
        // Line 75: index floors.
        self.ts = self.ts.max(self.reg.get(self.id).ts);
        self.sns = self.sns.max(self.pnd_tsk[me].sns);
        // Line 76: discard illogical vector clocks.
        let vc_now = self.reg.vector_clock();
        for e in &mut self.pnd_tsk {
            if let Some(vc) = &e.vc {
                if vc.n() != self.n || !vc.le(&vc_now) {
                    e.vc = None;
                }
            }
        }
        // Line 77: resynchronise the own entry.
        if self.sns != self.pnd_tsk[me].sns {
            self.pnd_tsk[me] = PndEntry {
                sns: self.sns,
                vc: None,
                fnl: None,
            };
        }
        // Line 78: gossip.
        for k in 0..self.n {
            if k != me {
                fx.send(
                    NodeId(k),
                    Alg3Msg::Gossip {
                        cell: self.reg.get(NodeId(k)),
                        pnd_sns: self.pnd_tsk[k].sns,
                    },
                );
            }
        }
        // Lines 79–80: one `baseWrite` per iteration, then `baseSnapshot`.
        // A write in progress retransmits; an idle node starts the next
        // queued write (line 79) — the base call then starts when that
        // write *completes* (see the `WriteAck` handler), mirroring the
        // pseudo-code's sequential `baseWrite(); baseSnapshot(Δ)`. While a
        // base call runs, further writes stay queued: this is exactly the
        // temporary write-blocking that makes snapshots terminate.
        if let Some(w) = &self.write {
            fx.broadcast(
                self.n,
                &Alg3Msg::Write {
                    reg: w.lreg.clone(),
                },
            );
        } else if self.base.is_none() {
            if let Some((op, v)) = self.write_queue.pop_front() {
                self.start_write(op, v, fx);
            }
        }
        // Line 80: snapshots.
        if self.write.is_none() {
            match &self.base {
                Some(base) => match &base.phase {
                    BasePhase::Inner => {
                        let cur = self.s_cap_delta();
                        let refs = self.task_refs(&cur);
                        let ssn = base.acks.tag();
                        let msg = Alg3Msg::Snapshot {
                            tasks: Arc::new(refs),
                            reg: self.reg.payload(),
                            ssn,
                        };
                        fx.broadcast(self.n, &msg);
                    }
                    BasePhase::SaveReg { entries, .. } => {
                        let msg = Alg3Msg::Save {
                            entries: entries.clone(),
                        };
                        fx.broadcast(self.n, &msg);
                    }
                },
                None => self.start_base(fx),
            }
        }
        self.deliver_own_if_ready(fx);
    }

    fn on_message(&mut self, from: NodeId, msg: Alg3Msg, fx: &mut Effects<Alg3Msg>) {
        match msg {
            // Lines 100–102.
            Alg3Msg::Write { reg } => {
                self.reg.merge_from(&reg);
                fx.send(
                    from,
                    Alg3Msg::WriteAck {
                        reg: self.reg.payload(),
                    },
                );
            }
            // baseWrite's until-condition (line 84).
            Alg3Msg::WriteAck { reg } => {
                let accepted = match &mut self.write {
                    Some(w) if w.lreg.le(&reg) => w.acks.insert(from),
                    _ => false,
                };
                if accepted {
                    self.merge(&reg);
                    let done = matches!(&self.write, Some(w) if w.acks.is_majority());
                    if done {
                        let op = self.write.take().expect("write active").op;
                        fx.complete(op, OpResponse::WriteDone);
                        // End of the pseudo-code's line 79: the iteration
                        // proceeds to line 80 — pending snapshot work now
                        // blocks further writes until it completes.
                        if self.base.is_none() && !self.delta_set().is_empty() {
                            self.start_base(fx);
                        }
                    }
                }
            }
            // Lines 103–107.
            Alg3Msg::Snapshot { tasks, reg, ssn } => {
                self.reg.merge_from(&reg);
                // Line 105: adopt newer task announcements.
                for t in tasks.iter() {
                    if t.node >= self.n {
                        continue;
                    }
                    let e = &mut self.pnd_tsk[t.node];
                    if e.sns < t.sns {
                        *e = PndEntry {
                            sns: t.sns,
                            vc: t.vc.clone(),
                            fnl: None,
                        };
                    } else if e.sns == t.sns && e.vc.is_none() && e.fnl.is_none() {
                        e.vc = t.vc.clone();
                    }
                }
                // Line 106: forward known results of the requested tasks.
                let known: Vec<SaveEntry> = tasks
                    .iter()
                    .filter(|t| t.node < self.n)
                    .filter_map(|t| {
                        let e = &self.pnd_tsk[t.node];
                        e.fnl.as_ref().map(|view| SaveEntry {
                            node: t.node,
                            sns: e.sns,
                            view: view.clone(),
                        })
                    })
                    .collect();
                fx.send(
                    from,
                    Alg3Msg::SnapshotAck {
                        reg: self.reg.payload(),
                        ssn,
                    },
                );
                if !known.is_empty() {
                    fx.send(
                        from,
                        Alg3Msg::Save {
                            entries: Arc::new(known),
                        },
                    );
                }
                self.on_tasks_changed(fx);
            }
            // The inner loop's until-condition (line 89) plus line 90.
            Alg3Msg::SnapshotAck { reg, ssn } => {
                let accepted = match &mut self.base {
                    Some(b) if matches!(b.phase, BasePhase::Inner) => b.acks.accept(from, ssn),
                    _ => false,
                };
                if accepted {
                    self.merge(&reg);
                    self.check_inner_done(fx);
                }
            }
            // Lines 95–97.
            Alg3Msg::Save { entries } => {
                self.apply_save_entries(&entries);
                let ids: Vec<(usize, u64)> = entries.iter().map(|e| (e.node, e.sns)).collect();
                fx.send(from, Alg3Msg::SaveAck { ids });
                self.on_tasks_changed(fx);
            }
            // safeReg's until-condition (line 71).
            Alg3Msg::SaveAck { ids } => {
                let mut finished: Option<Arc<Vec<SaveEntry>>> = None;
                if let Some(base) = &mut self.base {
                    if let BasePhase::SaveReg { entries, acks } = &mut base.phase {
                        let expected: Vec<(usize, u64)> =
                            entries.iter().map(|e| (e.node, e.sns)).collect();
                        if ids == expected {
                            acks.insert(from);
                            if acks.is_majority() {
                                finished = Some(entries.clone());
                            }
                        }
                    }
                }
                if let Some(entries) = finished {
                    // The safe-register write is durable at a majority;
                    // adopt the results locally (the broadcast's
                    // self-delivery normally already has).
                    self.apply_save_entries(&entries);
                    self.deliver_own_if_ready(fx);
                    self.check_outer_done(fx);
                }
            }
            // Lines 98–99 (with the pndTsk[k].sns field of line 78).
            Alg3Msg::Gossip { cell, pnd_sns } => {
                self.reg.join_cell(self.id, cell);
                self.ts = self.ts.max(self.reg.get(self.id).ts);
                self.sns = self.sns.max(pnd_sns);
            }
        }
    }

    fn invoke(&mut self, id: OpId, op: SnapshotOp, fx: &mut Effects<Alg3Msg>) {
        match op {
            SnapshotOp::Write(v) => {
                // Line 81: writes wait in writePending; the do-forever
                // schedules them (line 79), deferring while a base
                // snapshot call is blocking writes. When the node is fully
                // idle, nothing is queued ahead, and no snapshot work is
                // known, starting immediately is equivalent to (and faster
                // than) waiting a round. The queue-empty check is
                // essential: a new write must never overtake one deferred
                // earlier (a node's writes are sequential).
                if self.write.is_none()
                    && self.base.is_none()
                    && self.write_queue.is_empty()
                    && self.delta_set().is_empty()
                {
                    self.start_write(id, v, fx);
                } else {
                    self.write_queue.push_back((id, v));
                }
            }
            SnapshotOp::Snapshot => {
                if self.snap_wait.is_none() {
                    self.start_snapshot(id);
                } else {
                    // One pending task per node (the paper's simplifying
                    // assumption); extra client calls queue locally.
                    self.snap_queue.push_back(id);
                }
            }
        }
    }

    fn is_busy(&self) -> bool {
        self.write.is_some()
            || !self.write_queue.is_empty()
            || self.snap_wait.is_some()
            || !self.snap_queue.is_empty()
    }

    fn corrupt(&mut self, rng: &mut dyn RngCore) {
        const M: u64 = 1 << 20;
        self.ts = rng.next_u64() % M;
        self.ssn = rng.next_u64() % M;
        self.sns = rng.next_u64() % M;
        for k in 0..self.n {
            self.reg.set(
                NodeId(k),
                Tagged {
                    ts: rng.next_u64() % M,
                    val: rng.next_u64(),
                },
            );
        }
        for k in 0..self.n {
            let mut vc = Vec::with_capacity(self.n);
            for _ in 0..self.n {
                vc.push(rng.next_u64() % M);
            }
            self.pnd_tsk[k] = PndEntry {
                sns: rng.next_u64() % M,
                vc: if rng.next_u32().is_multiple_of(2) {
                    Some(VectorClock::from_components(vc))
                } else {
                    None
                },
                fnl: if rng.next_u32().is_multiple_of(2) {
                    Some((&*self.reg).into())
                } else {
                    None
                },
            };
        }
        // Scramble the in-flight phase machines too.
        if let Some(w) = &mut self.write {
            w.acks.clear();
            w.lreg = self.reg.payload();
        }
        self.base = None;
        // A waiting client op rides on whatever task id the corrupted
        // table now shows (deliver_own_if_ready re-binds it).
        if let Some((op, _)) = self.snap_wait {
            self.snap_wait = Some((op, self.pnd_tsk[self.id.index()].sns));
        }
    }

    fn restart(&mut self) {
        let (id, n, cfg) = (self.id, self.n, self.cfg);
        *self = Alg3::new(id, n, cfg);
    }

    /// Definition 1's node-local invariants: (i) `ts ≥ reg[i].ts`,
    /// (iii) `sns = pndTsk[i].sns`, (iv) every stored vector clock is
    /// `⪯ VC`.
    fn local_invariants_hold(&self) -> bool {
        let me = self.id.index();
        if self.ts < self.reg.get(self.id).ts {
            return false;
        }
        if self.sns != self.pnd_tsk[me].sns {
            return false;
        }
        let vc_now = self.reg.vector_clock();
        self.pnd_tsk.iter().all(|e| {
            e.vc.as_ref()
                .is_none_or(|vc| vc.n() == self.n && vc.le(&vc_now))
        })
    }

    fn stats(&self) -> ProtocolStats {
        ProtocolStats {
            rounds: self.rounds,
            write_index: self.ts,
            snapshot_index: self.sns,
            stale_epoch_dropped: 0,
        }
    }
}

impl crate::bounded::HasIndices for Alg3 {
    fn max_index(&self) -> u64 {
        let reg_max = self.reg.iter().map(|(_, c)| c.ts).max().unwrap_or(0);
        let pnd_max = self
            .pnd_tsk
            .iter()
            .map(|e| {
                e.sns.max(
                    e.vc.as_ref()
                        .map_or(0, |vc| vc.components().iter().copied().max().unwrap_or(0)),
                )
            })
            .max()
            .unwrap_or(0);
        self.ts
            .max(self.ssn)
            .max(self.sns)
            .max(reg_max)
            .max(pnd_max)
    }

    fn export_reg(&self) -> RegArray {
        self.reg.to_reg()
    }

    fn install_reset(&mut self, reg: RegArray) {
        self.ts = reg.get(self.id).ts;
        self.ssn = 0;
        self.sns = 0;
        self.reg = reg.into();
        self.pnd_tsk = vec![PndEntry::default(); self.n];
        self.write = None;
        self.base = None;
        self.write_queue.clear();
        self.snap_wait = None;
        self.snap_queue.clear();
    }

    fn drain_ops(&mut self) -> Vec<OpId> {
        let mut ids = Vec::new();
        if let Some(w) = self.write.take() {
            ids.push(w.op);
        }
        ids.extend(self.write_queue.drain(..).map(|(id, _)| id));
        if let Some((op, _)) = self.snap_wait.take() {
            ids.push(op);
        }
        ids.extend(self.snap_queue.drain(..));
        self.base = None;
        ids
    }

    fn seed_indices(&mut self, base: u64) {
        self.ts = self.ts.max(base);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fx() -> Effects<Alg3Msg> {
        Effects::new()
    }

    fn node(i: usize, n: usize, delta: u64) -> Alg3 {
        Alg3::new(NodeId(i), n, Alg3Config { delta })
    }

    #[test]
    fn snapshot_invocation_creates_pending_task() {
        let mut a = node(0, 3, 0);
        let mut e = fx();
        a.invoke(OpId(1), SnapshotOp::Snapshot, &mut e);
        assert_eq!(a.pnd_tsk()[0].sns, 1);
        assert!(a.pnd_tsk()[0].fnl.is_none());
        assert!(a.is_busy());
        // Dissemination happens via the do-forever loop.
        a.on_round(&mut e);
        let sends = e.take_sends();
        assert!(sends
            .iter()
            .any(|(_, m)| matches!(m, Alg3Msg::Snapshot { tasks, .. } if tasks.len() == 1)));
    }

    #[test]
    fn delta_zero_includes_all_known_tasks() {
        let mut a = node(1, 3, 0);
        a.pnd_tsk[0] = PndEntry {
            sns: 4,
            vc: None,
            fnl: None,
        };
        assert_eq!(a.delta_set(), vec![0]);
    }

    #[test]
    fn delta_positive_requires_write_progress() {
        let mut a = node(1, 3, 2);
        a.pnd_tsk[0] = PndEntry {
            sns: 4,
            vc: Some(VectorClock::zero(3)),
            fnl: None,
        };
        assert!(a.delta_set().is_empty(), "no writes observed yet");
        // Two writes land in reg: progress reaches δ = 2.
        a.reg.set(NodeId(2), Tagged::new(9, 2));
        assert_eq!(a.delta_set(), vec![0]);
    }

    #[test]
    fn own_task_always_in_delta() {
        let mut a = node(0, 3, 100);
        let mut e = fx();
        a.invoke(OpId(1), SnapshotOp::Snapshot, &mut e);
        assert_eq!(a.delta_set(), vec![0]);
    }

    #[test]
    fn clean_double_read_goes_to_safe_register() {
        let mut a = node(0, 3, 0);
        let mut e = fx();
        a.invoke(OpId(1), SnapshotOp::Snapshot, &mut e);
        a.on_round(&mut e); // starts base, broadcasts SNAPSHOT ssn=1
        e.take_sends();
        let reg: Payload = a.reg().clone().into();
        a.on_message(
            NodeId(1),
            Alg3Msg::SnapshotAck {
                reg: reg.clone(),
                ssn: 1,
            },
            &mut e,
        );
        a.on_message(NodeId(2), Alg3Msg::SnapshotAck { reg, ssn: 1 }, &mut e);
        // prev == reg: SAVE broadcast goes out.
        let sends = e.take_sends();
        assert!(sends
            .iter()
            .any(|(_, m)| matches!(m, Alg3Msg::Save { entries } if entries[0].node == 0)));
    }

    #[test]
    fn save_majority_delivers_own_snapshot() {
        let mut a = node(0, 3, 0);
        let mut e = fx();
        a.invoke(OpId(1), SnapshotOp::Snapshot, &mut e);
        a.on_round(&mut e);
        let reg: Payload = a.reg().clone().into();
        a.on_message(
            NodeId(1),
            Alg3Msg::SnapshotAck {
                reg: reg.clone(),
                ssn: 1,
            },
            &mut e,
        );
        a.on_message(NodeId(2), Alg3Msg::SnapshotAck { reg, ssn: 1 }, &mut e);
        e.take_sends();
        // SAVEacks from a majority (including a self-ack path would be via
        // self-delivery; here two remote acks suffice).
        a.on_message(NodeId(1), Alg3Msg::SaveAck { ids: vec![(0, 1)] }, &mut e);
        a.on_message(NodeId(2), Alg3Msg::SaveAck { ids: vec![(0, 1)] }, &mut e);
        let done = e.take_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, OpId(1));
        assert!(matches!(done[0].1, OpResponse::Snapshot(_)));
        assert!(!a.is_busy());
    }

    #[test]
    fn disturbed_attempt_samples_vector_clock() {
        let mut a = node(0, 3, 5);
        let mut e = fx();
        a.invoke(OpId(1), SnapshotOp::Snapshot, &mut e);
        a.on_round(&mut e);
        e.take_sends();
        // Acks carry a concurrent write by p1: prev != reg.
        let mut moved = a.reg().clone();
        moved.set(NodeId(1), Tagged::new(5, 1));
        let moved: Payload = moved.into();
        a.on_message(
            NodeId(1),
            Alg3Msg::SnapshotAck {
                reg: moved.clone(),
                ssn: 1,
            },
            &mut e,
        );
        a.on_message(
            NodeId(2),
            Alg3Msg::SnapshotAck { reg: moved, ssn: 1 },
            &mut e,
        );
        assert!(a.pnd_tsk()[0].vc.is_some(), "line 93 sampled VC");
    }

    #[test]
    fn save_handler_adopts_results_and_acks() {
        let mut a = node(2, 3, 0);
        let mut e = fx();
        let view: SnapshotView = (&RegArray::bottom(3)).into();
        a.on_message(
            NodeId(0),
            Alg3Msg::Save {
                entries: Arc::new(vec![SaveEntry {
                    node: 0,
                    sns: 3,
                    view,
                }]),
            },
            &mut e,
        );
        assert_eq!(a.pnd_tsk()[0].sns, 3);
        assert!(a.pnd_tsk()[0].fnl.is_some());
        let sends = e.take_sends();
        assert!(matches!(
            &sends[0],
            (NodeId(0), Alg3Msg::SaveAck { ids }) if ids == &vec![(0usize, 3u64)]
        ));
    }

    #[test]
    fn stale_save_does_not_regress() {
        let mut a = node(2, 3, 0);
        let mut e = fx();
        a.pnd_tsk[0] = PndEntry {
            sns: 5,
            vc: None,
            fnl: None,
        };
        let view: SnapshotView = (&RegArray::bottom(3)).into();
        a.on_message(
            NodeId(1),
            Alg3Msg::Save {
                entries: Arc::new(vec![SaveEntry {
                    node: 0,
                    sns: 3,
                    view,
                }]),
            },
            &mut e,
        );
        assert_eq!(a.pnd_tsk()[0].sns, 5, "older result ignored");
        assert!(a.pnd_tsk()[0].fnl.is_none());
    }

    #[test]
    fn snapshot_server_forwards_known_results() {
        let mut a = node(2, 3, 0);
        let mut e = fx();
        let view: SnapshotView = (&RegArray::bottom(3)).into();
        a.pnd_tsk[0] = PndEntry {
            sns: 3,
            vc: None,
            fnl: Some(view),
        };
        a.on_message(
            NodeId(1),
            Alg3Msg::Snapshot {
                tasks: Arc::new(vec![TaskRef {
                    node: 0,
                    sns: 3,
                    vc: None,
                }]),
                reg: RegArray::bottom(3).into(),
                ssn: 9,
            },
            &mut e,
        );
        let sends = e.take_sends();
        assert!(sends.iter().any(|(to, m)| *to == NodeId(1)
            && matches!(m, Alg3Msg::Save { entries } if entries[0].node == 0)));
    }

    #[test]
    fn writes_defer_while_base_snapshot_runs() {
        let mut a = node(0, 3, 0);
        let mut e = fx();
        a.invoke(OpId(1), SnapshotOp::Snapshot, &mut e);
        a.on_round(&mut e); // base starts
        a.invoke(OpId(2), SnapshotOp::Write(7), &mut e);
        assert!(a.write.is_none(), "write deferred during base call");
        assert_eq!(a.write_queue.len(), 1);
    }

    #[test]
    fn gossip_recovers_sns() {
        let mut a = node(1, 3, 0);
        let mut e = fx();
        a.on_message(
            NodeId(0),
            Alg3Msg::Gossip {
                cell: Tagged::new(4, 2),
                pnd_sns: 7,
            },
            &mut e,
        );
        assert_eq!(a.indices().2, 7, "sns caught up");
        // Next round resynchronises pndTsk[i] (line 77).
        a.on_round(&mut e);
        assert_eq!(a.pnd_tsk()[1].sns, 7);
    }

    #[test]
    fn round_discards_illogical_vector_clocks() {
        let mut a = node(0, 3, 1);
        a.pnd_tsk[1] = PndEntry {
            sns: 2,
            vc: Some(VectorClock::from_components(vec![99, 99, 99])),
            fnl: None,
        };
        let mut e = fx();
        a.on_round(&mut e);
        assert!(a.pnd_tsk()[1].vc.is_none(), "line 76 cleanup");
    }

    #[test]
    fn corrupt_then_rounds_restore_local_invariants() {
        let mut a = node(0, 4, 2);
        let mut rng = rand::rngs::mock::StepRng::new(0x1234_5678, 0x9E37_79B9);
        a.corrupt(&mut rng);
        let mut e = fx();
        a.on_round(&mut e);
        assert!(a.local_invariants_hold());
    }

    #[test]
    fn message_size_accounting() {
        let g = Alg3Msg::Gossip {
            cell: Tagged::new(1, 1),
            pnd_sns: 0,
        };
        // Gossip stays O(ν), independent of n.
        assert_eq!(g.size_bits(64), 64 + 128 + 64);
        let s = Alg3Msg::Snapshot {
            tasks: Arc::new(vec![]),
            reg: RegArray::bottom(4).into(),
            ssn: 1,
        };
        assert_eq!(s.size_bits(64), 64 + 64 + 4 * 128);
    }
}
