//! Edge-case tests of Algorithm 3's pseudo-code details that the
//! happy-path suites don't isolate: task adoption ordering (line 105),
//! result forwarding (lines 106–107), the own-entry resynchronisation
//! (line 77), client-side snapshot queueing, and Δ dynamics.

use sss_core::{Alg3, Alg3Config, Alg3Msg, SaveEntry, TaskRef};
use sss_types::{
    Effects, NodeId, OpId, OpResponse, Payload, Protocol, RegArray, SnapshotOp, SnapshotView,
    Tagged,
};
use std::sync::Arc;

fn node(i: usize, n: usize, delta: u64) -> Alg3 {
    Alg3::new(NodeId(i), n, Alg3Config { delta })
}

fn fx() -> Effects<Alg3Msg> {
    Effects::new()
}

fn view(n: usize) -> SnapshotView {
    (&RegArray::bottom(n)).into()
}

#[test]
fn newer_task_supersedes_older_announcement() {
    let mut a = node(1, 3, 0);
    let mut e = fx();
    for sns in [3u64, 5] {
        a.on_message(
            NodeId(0),
            Alg3Msg::Snapshot {
                tasks: Arc::new(vec![TaskRef {
                    node: 0,
                    sns,
                    vc: None,
                }]),
                reg: RegArray::bottom(3).into(),
                ssn: sns,
            },
            &mut e,
        );
    }
    assert_eq!(a.pnd_tsk()[0].sns, 5, "newer task adopted");
    // An old announcement arriving late must not regress.
    a.on_message(
        NodeId(2),
        Alg3Msg::Snapshot {
            tasks: Arc::new(vec![TaskRef {
                node: 0,
                sns: 4,
                vc: None,
            }]),
            reg: RegArray::bottom(3).into(),
            ssn: 9,
        },
        &mut e,
    );
    assert_eq!(a.pnd_tsk()[0].sns, 5, "stale announcement ignored");
}

#[test]
fn save_for_newer_task_replaces_result() {
    let mut a = node(2, 3, 0);
    let mut e = fx();
    a.on_message(
        NodeId(0),
        Alg3Msg::Save {
            entries: Arc::new(vec![SaveEntry {
                node: 0,
                sns: 2,
                view: view(3),
            }]),
        },
        &mut e,
    );
    assert_eq!(a.pnd_tsk()[0].sns, 2);
    // A SAVE for a newer task of the same node supersedes sns and fnl.
    a.on_message(
        NodeId(1),
        Alg3Msg::Save {
            entries: Arc::new(vec![SaveEntry {
                node: 0,
                sns: 7,
                view: view(3),
            }]),
        },
        &mut e,
    );
    assert_eq!(a.pnd_tsk()[0].sns, 7);
    assert!(a.pnd_tsk()[0].fnl.is_some());
}

#[test]
fn out_of_range_indices_in_messages_are_ignored() {
    // Corrupted messages may carry node indices ≥ n; handlers must not
    // panic or write out of bounds.
    let mut a = node(0, 3, 0);
    let mut e = fx();
    a.on_message(
        NodeId(1),
        Alg3Msg::Snapshot {
            tasks: Arc::new(vec![TaskRef {
                node: 99,
                sns: 1,
                vc: None,
            }]),
            reg: RegArray::bottom(3).into(),
            ssn: 1,
        },
        &mut e,
    );
    a.on_message(
        NodeId(1),
        Alg3Msg::Save {
            entries: Arc::new(vec![SaveEntry {
                node: 42,
                sns: 1,
                view: view(3),
            }]),
        },
        &mut e,
    );
    assert!(a.local_invariants_hold() || !a.local_invariants_hold()); // no panic is the point
}

#[test]
fn second_snapshot_queues_until_first_completes() {
    let mut a = node(0, 3, 0);
    let mut e = fx();
    a.invoke(OpId(1), SnapshotOp::Snapshot, &mut e);
    a.invoke(OpId(2), SnapshotOp::Snapshot, &mut e);
    assert_eq!(a.pnd_tsk()[0].sns, 1, "one pending task per node");
    // Deliver the first result via SAVE.
    a.on_message(
        NodeId(1),
        Alg3Msg::Save {
            entries: Arc::new(vec![SaveEntry {
                node: 0,
                sns: 1,
                view: view(3),
            }]),
        },
        &mut e,
    );
    let done = e.take_completions();
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].0, OpId(1));
    // The queued snapshot becomes the new pending task (sns = 2).
    assert_eq!(a.pnd_tsk()[0].sns, 2);
    assert!(a.is_busy());
    // And completes in turn.
    a.on_message(
        NodeId(1),
        Alg3Msg::Save {
            entries: Arc::new(vec![SaveEntry {
                node: 0,
                sns: 2,
                view: view(3),
            }]),
        },
        &mut e,
    );
    let done = e.take_completions();
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].0, OpId(2));
    assert!(!a.is_busy());
}

#[test]
fn write_returns_writedone_not_snapshot() {
    let mut a = node(0, 3, 0);
    let mut e = fx();
    a.invoke(OpId(1), SnapshotOp::Write(7), &mut e);
    let lreg: Payload = a.reg().clone().into();
    a.on_message(NodeId(1), Alg3Msg::WriteAck { reg: lreg.clone() }, &mut e);
    a.on_message(NodeId(2), Alg3Msg::WriteAck { reg: lreg }, &mut e);
    let done = e.take_completions();
    assert_eq!(done.len(), 1);
    assert!(matches!(done[0].1, OpResponse::WriteDone));
}

#[test]
fn delta_excludes_finished_tasks() {
    let mut a = node(1, 3, 0);
    let mut e = fx();
    // Learn of a task, then its result: it must not re-enter Δ (no more
    // SNAPSHOT broadcasts for it on later rounds).
    a.on_message(
        NodeId(0),
        Alg3Msg::Snapshot {
            tasks: Arc::new(vec![TaskRef {
                node: 0,
                sns: 1,
                vc: None,
            }]),
            reg: RegArray::bottom(3).into(),
            ssn: 1,
        },
        &mut e,
    );
    a.on_message(
        NodeId(2),
        Alg3Msg::Save {
            entries: Arc::new(vec![SaveEntry {
                node: 0,
                sns: 1,
                view: view(3),
            }]),
        },
        &mut e,
    );
    e.take_sends();
    a.on_round(&mut e);
    let sends = e.take_sends();
    let snapshot_broadcasts = sends
        .iter()
        .filter(|(_, m)| matches!(m, Alg3Msg::Snapshot { tasks, .. } if !tasks.is_empty()))
        .count();
    assert_eq!(snapshot_broadcasts, 0, "finished task not helped again");
}

#[test]
fn gossip_never_regresses_own_register() {
    let mut a = node(1, 3, 0);
    let mut e = fx();
    // Establish a high own entry.
    a.on_message(
        NodeId(0),
        Alg3Msg::Gossip {
            cell: Tagged::new(9, 8),
            pnd_sns: 0,
        },
        &mut e,
    );
    assert_eq!(a.reg().get(NodeId(1)).ts, 8);
    // A stale gossip cell must not lower it.
    a.on_message(
        NodeId(2),
        Alg3Msg::Gossip {
            cell: Tagged::new(1, 3),
            pnd_sns: 0,
        },
        &mut e,
    );
    assert_eq!(a.reg().get(NodeId(1)).ts, 8);
    assert_eq!(a.reg().get(NodeId(1)).val, 9);
}

#[test]
fn stats_track_indices() {
    let mut a = node(0, 3, 0);
    let mut e = fx();
    a.invoke(OpId(1), SnapshotOp::Write(5), &mut e);
    let s = a.stats();
    assert_eq!(s.write_index, 1);
    a.invoke(OpId(2), SnapshotOp::Snapshot, &mut e);
    assert_eq!(a.stats().snapshot_index, 1);
}

#[test]
fn restart_resets_everything() {
    let mut a = node(2, 3, 5);
    let mut e = fx();
    a.invoke(OpId(1), SnapshotOp::Write(5), &mut e);
    a.invoke(OpId(2), SnapshotOp::Snapshot, &mut e);
    a.restart();
    assert_eq!(a.indices(), (0, 0, 0));
    assert!(!a.is_busy());
    assert_eq!(a.delta(), 5, "configuration survives restart");
    assert!(a.pnd_tsk().iter().all(|p| p.sns == 0 && p.fnl.is_none()));
}
