//! End-to-end tests of Algorithm 3 under the discrete-event simulator.

use sss_core::{Alg3, Alg3Config};
use sss_sim::{Ctl, Driver, Sim, SimConfig};
use sss_types::{NodeId, OpId, OpResponse, Protocol, SnapshotOp, Value};

fn sim(cfg: SimConfig, delta: u64) -> Sim<Alg3> {
    let n = cfg.n;
    Sim::new(cfg, move |id| Alg3::new(id, n, Alg3Config { delta }))
}

#[test]
fn write_then_snapshot_sees_the_write() {
    for delta in [0, 2, 1000] {
        let mut s = sim(SimConfig::small(3), delta);
        s.invoke_at(0, NodeId(0), SnapshotOp::Write(42));
        assert!(s.run_until_idle(5_000_000), "write (δ={delta})");
        s.invoke_at(s.now(), NodeId(1), SnapshotOp::Snapshot);
        assert!(s.run_until_idle(20_000_000), "snapshot (δ={delta})");
        let snap = s
            .history()
            .completed()
            .find_map(|r| r.response.as_ref().and_then(OpResponse::as_snapshot))
            .expect("snapshot result");
        assert_eq!(snap.value_of(NodeId(0)), Some(42), "δ={delta}");
    }
}

/// A driver that keeps one writer writing back-to-back until the snapshot
/// under test completes (then stops the run).
struct ContinuousWriter {
    writer: NodeId,
    next_val: Value,
    writes_done: u64,
    snap_seen: bool,
}

impl Driver<Alg3> for ContinuousWriter {
    fn init(&mut self, ctl: &mut Ctl<'_, <Alg3 as Protocol>::Msg>) {
        ctl.invoke(self.writer, SnapshotOp::Write(self.next_val));
        self.next_val += 1;
    }
    fn on_completion(
        &mut self,
        node: NodeId,
        _id: OpId,
        resp: &OpResponse,
        ctl: &mut Ctl<'_, <Alg3 as Protocol>::Msg>,
    ) {
        match resp {
            OpResponse::Snapshot(_) => {
                self.snap_seen = true;
                ctl.stop();
            }
            OpResponse::WriteDone if node == self.writer => {
                self.writes_done += 1;
                ctl.invoke(self.writer, SnapshotOp::Write(self.next_val));
                self.next_val += 1;
            }
            _ => {}
        }
    }
}

/// The headline property: a snapshot terminates even though writes never
/// cease (this is where Algorithm 1 starves — see the starvation
/// experiment in the bench crate).
#[test]
fn snapshot_terminates_under_continuous_writes() {
    for delta in [0u64, 3] {
        let mut s = sim(SimConfig::small(4).with_seed(7 + delta), delta);
        let mut w = ContinuousWriter {
            writer: NodeId(1),
            next_val: 1,
            writes_done: 0,
            snap_seen: false,
        };
        let snap_op = s.invoke_at(500, NodeId(0), SnapshotOp::Snapshot);
        s.run_with_driver(&mut w, 10_000_000);
        let rec = s
            .history()
            .records()
            .iter()
            .find(|r| r.id == snap_op)
            .unwrap();
        assert!(
            rec.is_complete() && w.snap_seen,
            "snapshot must terminate under continuous writes (δ={delta})"
        );
        assert!(w.writes_done > 3, "writer kept making progress (δ={delta})");
    }
}

#[test]
fn concurrent_snapshots_by_all_nodes_terminate() {
    for delta in [0u64, 2] {
        let mut s = sim(SimConfig::small(5).with_seed(3), delta);
        for i in 0..5 {
            s.invoke_at(10 + i, NodeId(i as usize), SnapshotOp::Snapshot);
        }
        assert!(s.run_until_idle(50_000_000), "all snapshots (δ={delta})");
        assert_eq!(s.history().completed().count(), 5);
    }
}

#[test]
fn snapshots_are_mutually_comparable() {
    // Concurrent snapshots must be totally ordered by containment.
    let mut s = sim(SimConfig::harsh(4).with_seed(11), 1);
    for i in 0..4u64 {
        s.invoke_at(10 + i, NodeId(i as usize), SnapshotOp::Write(100 + i));
    }
    for i in 0..4u64 {
        s.invoke_at(40 + i, NodeId(i as usize), SnapshotOp::Snapshot);
    }
    assert!(s.run_until_idle(100_000_000));
    let views: Vec<Vec<u64>> = s
        .history()
        .completed()
        .filter_map(|r| r.response.as_ref().and_then(OpResponse::as_snapshot))
        .map(|v| v.timestamps())
        .collect();
    assert!(!views.is_empty());
    for a in &views {
        for b in &views {
            let a_le_b = a.iter().zip(b).all(|(x, y)| x <= y);
            let b_le_a = b.iter().zip(a).all(|(x, y)| x <= y);
            assert!(a_le_b || b_le_a, "incomparable snapshots: {a:?} vs {b:?}");
        }
    }
}

#[test]
fn tolerates_minority_crashes() {
    let mut s = sim(SimConfig::small(5), 0);
    s.crash_at(0, NodeId(3));
    s.crash_at(0, NodeId(4));
    s.invoke_at(10, NodeId(0), SnapshotOp::Write(5));
    s.invoke_at(20, NodeId(1), SnapshotOp::Snapshot);
    assert!(s.run_until_idle(50_000_000));
}

#[test]
fn recovers_from_full_corruption() {
    let mut s = sim(SimConfig::small(4).with_seed(5), 2);
    s.invoke_at(0, NodeId(0), SnapshotOp::Write(1));
    s.run_until_idle(5_000_000);
    for i in 0..4 {
        s.corrupt_node_now(NodeId(i));
    }
    s.corrupt_channels_now(1.0, 1 << 20);
    assert!(s.run_for_cycles(10, 200_000_000));
    for i in 0..4 {
        assert!(
            s.node(NodeId(i)).local_invariants_hold(),
            "node {i} invariants after recovery"
        );
    }
    // Usable afterwards.
    s.invoke_at(s.now(), NodeId(1), SnapshotOp::Write(9));
    s.invoke_at(s.now() + 1, NodeId(2), SnapshotOp::Snapshot);
    assert!(s.run_until_idle(400_000_000));
}

#[test]
fn phantom_task_from_corruption_resolves_itself() {
    let mut s = sim(SimConfig::small(3), 0);
    // Corrupt one node only: its pndTsk may now announce phantom tasks.
    s.corrupt_node_now(NodeId(2));
    assert!(s.run_for_cycles(12, 100_000_000));
    // Every announced task either finished or was superseded; no node is
    // stuck in a base call that cannot end.
    s.invoke_at(s.now(), NodeId(0), SnapshotOp::Snapshot);
    assert!(s.run_until_idle(200_000_000));
}

#[test]
fn works_on_harsh_network() {
    let mut s = sim(SimConfig::harsh(3).with_seed(21), 1);
    s.invoke_at(0, NodeId(0), SnapshotOp::Write(1));
    s.invoke_at(50, NodeId(1), SnapshotOp::Snapshot);
    s.invoke_at(90, NodeId(2), SnapshotOp::Write(2));
    assert!(s.run_until_idle(200_000_000));
}

#[test]
fn deterministic_under_seed() {
    let run = |seed| {
        let mut s = sim(SimConfig::harsh(4).with_seed(seed), 1);
        s.invoke_at(0, NodeId(0), SnapshotOp::Write(5));
        s.invoke_at(100, NodeId(1), SnapshotOp::Snapshot);
        s.run_until_idle(50_000_000);
        s.trace_hash()
    };
    assert_eq!(run(31), run(31));
}
