//! Message-fuzzing robustness: a self-stabilizing protocol must tolerate
//! *any* incoming message content — arbitrary network state is part of
//! the fault model, so no sequence of structurally valid but semantically
//! garbage messages may panic the handlers, regress the register lattice,
//! or wedge the state machine.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sss_core::{Alg1, Alg1Msg, Alg3, Alg3Config, Alg3Msg, Bounded, BoundedConfig, BoundedMsg};
use sss_types::{ArbitraryMsg, Effects, NodeId, OpId, Protocol, SnapshotOp};

const N: usize = 4;

/// Drives one node with `count` arbitrary messages from pseudo-random
/// peers, interleaved with rounds; checks lattice monotonicity of its own
/// register view and that handlers never panic.
fn fuzz_alg1(seed: u64, count: usize, invoke_first: bool) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut node = Alg1::new(NodeId(0), N);
    let mut fx = Effects::new();
    if invoke_first {
        node.invoke(OpId(1), SnapshotOp::Write(42), &mut fx);
    }
    let mut prev = node.reg().clone();
    for i in 0..count {
        let from = NodeId(1 + (i % (N - 1)));
        let msg = Alg1Msg::arbitrary(&mut rng, N, 1 << 16);
        node.on_message(from, msg, &mut fx);
        assert!(
            prev.le(node.reg()),
            "register view regressed under garbage input"
        );
        prev = node.reg().clone();
        if i % 5 == 0 {
            node.on_round(&mut fx);
            assert!(
                node.local_invariants_hold(),
                "round must restore invariants"
            );
        }
        let _ = fx.take_sends();
        let _ = fx.take_completions();
    }
}

fn fuzz_alg3(seed: u64, count: usize, delta: u64, invoke_first: bool) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut node = Alg3::new(NodeId(0), N, Alg3Config { delta });
    let mut fx = Effects::new();
    if invoke_first {
        node.invoke(OpId(1), SnapshotOp::Snapshot, &mut fx);
    }
    let mut prev = node.reg().clone();
    for i in 0..count {
        let from = NodeId(1 + (i % (N - 1)));
        let msg = Alg3Msg::arbitrary(&mut rng, N, 1 << 16);
        node.on_message(from, msg, &mut fx);
        assert!(prev.le(node.reg()), "register view regressed");
        prev = node.reg().clone();
        if i % 5 == 0 {
            node.on_round(&mut fx);
            assert!(node.local_invariants_hold());
        }
        let _ = fx.take_sends();
        let _ = fx.take_completions();
        let _ = fx.take_aborts();
    }
}

fn fuzz_bounded(seed: u64, count: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut node = Bounded::new(Alg1::new(NodeId(0), N), BoundedConfig { max_int: 1 << 14 });
    let mut fx = Effects::new();
    for i in 0..count {
        let from = NodeId(1 + (i % (N - 1)));
        let msg = BoundedMsg::<Alg1Msg>::arbitrary(&mut rng, N, 1 << 16);
        node.on_message(from, msg, &mut fx);
        if i % 5 == 0 {
            node.on_round(&mut fx);
        }
        let _ = fx.take_sends();
        let _ = fx.take_completions();
        let _ = fx.take_aborts();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn alg1_survives_garbage_messages(seed in any::<u64>(), busy in any::<bool>()) {
        fuzz_alg1(seed, 120, busy);
    }

    #[test]
    fn alg3_survives_garbage_messages(
        seed in any::<u64>(),
        delta in 0u64..16,
        busy in any::<bool>(),
    ) {
        fuzz_alg3(seed, 120, delta, busy);
    }

    #[test]
    fn bounded_survives_garbage_messages(seed in any::<u64>()) {
        fuzz_bounded(seed, 120);
    }

    /// Corruption followed by garbage messages still never panics, and a
    /// single round restores the node-local invariants.
    #[test]
    fn corrupt_then_garbage_then_round(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut node = Alg3::new(NodeId(0), N, Alg3Config { delta: 1 });
        node.corrupt(&mut rng);
        let mut fx = Effects::new();
        for i in 0..40 {
            let from = NodeId(1 + (i % (N - 1)));
            let msg = Alg3Msg::arbitrary(&mut rng, N, 1 << 16);
            node.on_message(from, msg, &mut fx);
            let _ = fx.take_sends();
            let _ = fx.take_completions();
        }
        node.on_round(&mut fx);
        prop_assert!(node.local_invariants_hold());
    }
}
