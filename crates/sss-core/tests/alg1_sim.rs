//! End-to-end tests of Algorithm 1 under the discrete-event simulator.

use sss_core::Alg1;
use sss_sim::{Sim, SimConfig};
use sss_types::{NodeId, OpResponse, Protocol, SnapshotOp};

fn sim(cfg: SimConfig) -> Sim<Alg1> {
    let n = cfg.n;
    Sim::new(cfg, move |id| Alg1::new(id, n))
}

#[test]
fn write_then_snapshot_sees_the_write() {
    let mut s = sim(SimConfig::small(3));
    s.invoke_at(0, NodeId(0), SnapshotOp::Write(42));
    assert!(s.run_until_idle(1_000_000));
    s.invoke_at(s.now(), NodeId(1), SnapshotOp::Snapshot);
    assert!(s.run_until_idle(2_000_000));
    let snap = s
        .history()
        .completed()
        .find_map(|r| r.response.as_ref().and_then(OpResponse::as_snapshot))
        .expect("snapshot completed");
    assert_eq!(snap.value_of(NodeId(0)), Some(42));
}

#[test]
fn snapshot_terminates_after_writes_cease_on_harsh_network() {
    let mut s = sim(SimConfig::harsh(5).with_seed(3));
    for i in 0..5 {
        s.invoke_at(i * 50, NodeId(i as usize % 5), SnapshotOp::Write(i));
    }
    assert!(s.run_until_idle(50_000_000), "writes terminate");
    s.invoke_at(s.now(), NodeId(2), SnapshotOp::Snapshot);
    assert!(
        s.run_until_idle(100_000_000),
        "snapshot terminates after writes"
    );
}

#[test]
fn tolerates_minority_crashes() {
    let mut s = sim(SimConfig::small(5));
    s.crash_at(0, NodeId(3));
    s.crash_at(0, NodeId(4));
    s.invoke_at(10, NodeId(0), SnapshotOp::Write(7));
    s.invoke_at(20, NodeId(1), SnapshotOp::Snapshot);
    assert!(s.run_until_idle(5_000_000));
}

#[test]
fn blocks_without_majority_until_resume() {
    let mut s = sim(SimConfig::small(3));
    s.crash_at(0, NodeId(1));
    s.crash_at(0, NodeId(2));
    s.invoke_at(10, NodeId(0), SnapshotOp::Write(7));
    assert!(!s.run_until_idle(500_000), "no majority, no termination");
    s.resume_at(s.now() + 1, NodeId(1));
    assert!(s.run_until_idle(5_000_000), "resumed majority unblocks");
}

#[test]
fn recovers_from_full_state_corruption_within_cycles() {
    let mut s = sim(SimConfig::small(4));
    // Warm up with some traffic, then corrupt every node and the channels.
    s.invoke_at(0, NodeId(0), SnapshotOp::Write(1));
    s.run_until_idle(1_000_000);
    for i in 0..4 {
        s.corrupt_node_now(NodeId(i));
    }
    s.corrupt_channels_now(1.0, 1 << 20);
    // Theorem 1: O(1) cycles to recover. Give it a generous constant.
    assert!(s.run_for_cycles(8, 100_000_000));
    for i in 0..4 {
        assert!(
            s.node(NodeId(i)).local_invariants_hold(),
            "node {i} local invariant"
        );
    }
    // The object remains usable afterwards: ops terminate and the write
    // indices at every node move past any corrupted in-flight value.
    s.invoke_at(s.now(), NodeId(2), SnapshotOp::Write(9));
    s.invoke_at(s.now() + 1, NodeId(3), SnapshotOp::Snapshot);
    assert!(s.run_until_idle(100_000_000));
}

#[test]
fn gossip_flows_every_round_even_when_idle() {
    let mut s = sim(SimConfig::small(3));
    s.run_for_cycles(3, 10_000_000);
    let m = s.metrics();
    assert!(m.gossip_sent() > 0);
    // No operations ran: every non-gossip message count must be zero.
    assert_eq!(m.op_messages_sent(), 0);
}

#[test]
fn deterministic_under_seed() {
    let run = |seed| {
        let mut s = sim(SimConfig::harsh(4).with_seed(seed));
        s.invoke_at(0, NodeId(0), SnapshotOp::Write(5));
        s.invoke_at(100, NodeId(1), SnapshotOp::Snapshot);
        s.run_until_idle(50_000_000);
        s.trace_hash()
    };
    assert_eq!(run(11), run(11));
}
