//! Codec soundness: `decode(encode(m)) == m` for every message variant
//! of both algorithms, and corrupted frames are *rejected* — never
//! panicked on, never decoded into different content. The socket
//! backend's corruption story leans entirely on this: a bit flip in
//! flight must surface exactly like a `FaultPlan` drop.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sss_core::{Alg1Msg, Alg3Msg, SaveEntry, TaskRef};
use sss_types::{
    decode_frames, encode_frame, ArbitraryMsg, DecodedFrame, NodeId, Payload, RegArray,
    SnapshotView, Tagged, VectorClock, WireMsg,
};
use std::fmt::Debug;
use std::sync::Arc;

const N: usize = 5;

fn roundtrip<M: WireMsg + PartialEq + Debug>(msg: &M, n: usize) {
    let mut buf = Vec::new();
    encode_frame(NodeId(2), msg, &mut buf).unwrap();
    let frames: Vec<_> = decode_frames::<M>(&buf, n).map(Result::unwrap).collect();
    assert_eq!(
        frames,
        vec![DecodedFrame::Msg {
            from: NodeId(2),
            msg: msg.clone()
        }]
    );
}

/// Any single-bit flip anywhere in the frame is rejected with an error —
/// no panic, and never a clean decode of different content (the checksum
/// covers header and body alike).
fn reject_all_bit_flips<M: WireMsg + PartialEq + Debug>(msg: &M, n: usize) {
    let mut buf = Vec::new();
    encode_frame(NodeId(2), msg, &mut buf).unwrap();
    for bit in 0..buf.len() * 8 {
        let mut mangled = buf.clone();
        mangled[bit / 8] ^= 1 << (bit % 8);
        match decode_frames::<M>(&mangled, n).next() {
            Some(Err(_)) => {}
            other => panic!("bit {bit}: corrupted frame decoded as {other:?}"),
        }
    }
}

fn payload(cells: &[(u64, u64)]) -> Payload {
    Payload::new(
        cells
            .iter()
            .map(|&(ts, val)| Tagged { ts, val })
            .collect::<RegArray>(),
    )
}

fn view(cells: &[(u64, u64)]) -> SnapshotView {
    cells.iter().map(|&(ts, val)| Tagged { ts, val }).collect()
}

fn alg1_variants() -> Vec<Alg1Msg> {
    let reg = payload(&[(1, 10), (0, 0), (3, 30), (2, 20), (9, 90)]);
    vec![
        Alg1Msg::Write { reg: reg.clone() },
        Alg1Msg::WriteAck { reg: reg.clone() },
        Alg1Msg::Snapshot {
            reg: reg.clone(),
            ssn: 77,
        },
        Alg1Msg::SnapshotAck { reg, ssn: 77 },
        Alg1Msg::Gossip {
            cell: Tagged { ts: 5, val: 50 },
        },
    ]
}

fn alg3_variants() -> Vec<Alg3Msg> {
    let reg = payload(&[(4, 40), (1, 11), (0, 0), (7, 70), (2, 22)]);
    let tasks = Arc::new(vec![
        TaskRef {
            node: 0,
            sns: 9,
            vc: None,
        },
        TaskRef {
            node: 3,
            sns: 2,
            vc: Some(VectorClock::from_components(vec![1, 0, 4, 2, 9])),
        },
    ]);
    let entries = Arc::new(vec![SaveEntry {
        node: 4,
        sns: 6,
        view: view(&[(1, 1), (2, 2), (0, 0), (3, 3), (4, 4)]),
    }]);
    vec![
        Alg3Msg::Write { reg: reg.clone() },
        Alg3Msg::WriteAck { reg: reg.clone() },
        Alg3Msg::Snapshot {
            tasks,
            reg: reg.clone(),
            ssn: 12,
        },
        Alg3Msg::SnapshotAck { reg, ssn: 12 },
        Alg3Msg::Save { entries },
        Alg3Msg::SaveAck {
            ids: vec![(0, 5), (2, 8), (4, 1)],
        },
        Alg3Msg::Gossip {
            cell: Tagged { ts: 8, val: 80 },
            pnd_sns: 3,
        },
    ]
}

#[test]
fn every_alg1_variant_roundtrips() {
    for m in alg1_variants() {
        roundtrip(&m, N);
    }
}

#[test]
fn every_alg3_variant_roundtrips() {
    for m in alg3_variants() {
        roundtrip(&m, N);
    }
}

#[test]
fn every_alg1_variant_rejects_all_bit_flips() {
    for m in alg1_variants() {
        reject_all_bit_flips(&m, N);
    }
}

#[test]
fn every_alg3_variant_rejects_all_bit_flips() {
    for m in alg3_variants() {
        reject_all_bit_flips(&m, N);
    }
}

proptest! {
    /// Arbitrary structurally-valid messages (the same generator the
    /// corruption fault uses) round-trip exactly.
    #[test]
    fn alg1_arbitrary_roundtrips(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..8 {
            roundtrip(&Alg1Msg::arbitrary(&mut rng, N, 1 << 20), N);
        }
    }

    #[test]
    fn alg3_arbitrary_roundtrips(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..8 {
            roundtrip(&Alg3Msg::arbitrary(&mut rng, N, 1 << 20), N);
        }
    }

    /// Byte-level fuzz of the decoder itself: arbitrary buffers never
    /// panic, whatever they contain.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        for r in decode_frames::<Alg1Msg>(&bytes, N) { let _ = r; }
        for r in decode_frames::<Alg3Msg>(&bytes, N) { let _ = r; }
    }

    /// Random single-bit flips over random arbitrary messages are
    /// rejected (generalizing the exhaustive per-variant sweeps above).
    #[test]
    fn alg3_arbitrary_bit_flips_rejected(seed in any::<u64>(), bit_seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let msg = Alg3Msg::arbitrary(&mut rng, N, 1 << 20);
        let mut buf = Vec::new();
        encode_frame(NodeId(1), &msg, &mut buf).unwrap();
        let bit = (bit_seed as usize) % (buf.len() * 8);
        buf[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(decode_frames::<Alg3Msg>(&buf, N).next().unwrap().is_err());
    }
}
