//! End-to-end tests of the Section 5 bounded-counter construction under
//! the simulator.

use sss_core::{Alg1, Alg3, Alg3Config, Bounded, BoundedConfig};
use sss_sim::{Sim, SimConfig};
use sss_types::{NodeId, OpResponse, Protocol, SnapshotOp};
use sss_workload::unique_value;

type B1 = Bounded<Alg1>;

fn sim1(n: usize, max_int: u64, seed: u64) -> Sim<B1> {
    Sim::new(SimConfig::small(n).with_seed(seed), move |id| {
        Bounded::new(Alg1::new(id, n), BoundedConfig { max_int })
    })
}

#[test]
fn normal_operation_below_threshold() {
    let mut s = sim1(3, 1_000, 1);
    s.invoke_at(0, NodeId(0), SnapshotOp::Write(unique_value(NodeId(0), 1)));
    assert!(s.run_until_idle(5_000_000));
    s.invoke_at(s.now(), NodeId(1), SnapshotOp::Snapshot);
    assert!(s.run_until_idle(10_000_000));
    assert_eq!(s.node(NodeId(0)).epoch(), 0);
    assert_eq!(s.node(NodeId(0)).resets_done(), 0);
}

#[test]
fn reaching_maxint_triggers_a_global_reset_preserving_values() {
    let max_int = 8;
    let mut s = sim1(3, max_int, 2);
    // Perform max_int writes at node 0: the index hits the threshold.
    for seq in 1..=max_int {
        let t = s.now() + 1;
        s.invoke_at(
            t,
            NodeId(0),
            SnapshotOp::Write(unique_value(NodeId(0), seq)),
        );
        if !s.run_until_idle(50_000_000) {
            break; // the last write may be aborted by the reset — fine
        }
    }
    // Run until the reset completes everywhere.
    let done = s.run_while(200_000_000, |sim| {
        (0..3).any(|i| sim.node(NodeId(i)).epoch() == 0 || sim.node(NodeId(i)).is_wrapping())
    });
    assert!(done, "global reset completes");
    for i in 0..3 {
        let node = s.node(NodeId(i));
        assert_eq!(node.epoch(), 1, "node {i} epoch");
        // Indices wrapped to small values…
        assert!(node.inner().ts() <= 1, "node {i} wrapped ts");
        // …but the last written value survived.
        assert_eq!(
            node.inner().reg().get(NodeId(0)).val,
            unique_value(NodeId(0), max_int),
            "node {i} kept the register value"
        );
    }
    // The object is usable after the reset.
    s.invoke_at(
        s.now(),
        NodeId(1),
        SnapshotOp::Write(unique_value(NodeId(1), 1)),
    );
    s.invoke_at(s.now() + 1, NodeId(2), SnapshotOp::Snapshot);
    assert!(s.run_until_idle(100_000_000));
    let snap = s
        .history()
        .completed()
        .filter_map(|r| r.response.as_ref().and_then(OpResponse::as_snapshot))
        .last()
        .unwrap();
    assert_eq!(
        snap.value_of(NodeId(0)),
        Some(unique_value(NodeId(0), max_int)),
        "post-reset snapshot sees the preserved value"
    );
}

#[test]
fn corrupted_counter_jump_is_healed_by_reset() {
    // A transient fault pushes an index near MAXINT: the construction
    // wraps it instead of dying of overflow.
    let mut s = sim1(4, 1 << 16, 3);
    s.invoke_at(0, NodeId(1), SnapshotOp::Write(unique_value(NodeId(1), 1)));
    assert!(s.run_until_idle(5_000_000));
    // Corruption: indices jump to ~2^20 > MAXINT (corrupt draws % 2^20).
    s.corrupt_node_now(NodeId(2));
    let healed = s.run_while(500_000_000, |sim| {
        (0..4).any(|i| {
            let node = sim.node(NodeId(i));
            node.is_wrapping() || !node.local_invariants_hold()
        })
    });
    assert!(healed, "all nodes below MAXINT and not wrapping");
    let epochs: Vec<u64> = (0..4).map(|i| s.node(NodeId(i)).epoch()).collect();
    assert!(
        epochs.iter().all(|&e| e == epochs[0]),
        "epoch agreement: {epochs:?}"
    );
    // Usable afterwards.
    s.invoke_at(s.now(), NodeId(3), SnapshotOp::Snapshot);
    assert!(s.run_until_idle(100_000_000));
}

#[test]
fn aborts_are_bounded_and_reported() {
    let max_int = 5;
    let mut s = sim1(3, max_int, 4);
    for seq in 1..=max_int + 2 {
        let t = s.now() + 1;
        s.invoke_at(
            t,
            NodeId(0),
            SnapshotOp::Write(unique_value(NodeId(0), seq)),
        );
        s.run_until_idle(50_000_000);
    }
    s.run_while(200_000_000, |sim| {
        (0..3).any(|i| sim.node(NodeId(i)).is_wrapping())
    });
    let total_aborts: u64 = (0..3).map(|i| s.node(NodeId(i)).aborted_ops()).sum();
    let completed = s.history().completed().count();
    // The write that pushes the index to MAXINT may itself be aborted
    // (its node disables operations before collecting the acks).
    assert!(
        completed >= max_int as usize - 1,
        "most writes completed: {completed}"
    );
    assert!(
        total_aborts <= 4,
        "only a bounded number aborted: {total_aborts}"
    );
}

#[test]
fn bounded_alg3_also_resets() {
    let n = 3;
    let max_int = 6;
    let mut s: Sim<Bounded<Alg3>> = Sim::new(SimConfig::small(n).with_seed(5), move |id| {
        Bounded::new(
            Alg3::new(id, n, Alg3Config { delta: 0 }),
            BoundedConfig { max_int },
        )
    });
    for seq in 1..=max_int {
        let t = s.now() + 1;
        s.invoke_at(
            t,
            NodeId(1),
            SnapshotOp::Write(unique_value(NodeId(1), seq)),
        );
        if !s.run_until_idle(50_000_000) {
            break;
        }
    }
    let done = s.run_while(300_000_000, |sim| {
        (0..n).any(|i| sim.node(NodeId(i)).epoch() == 0 || sim.node(NodeId(i)).is_wrapping())
    });
    assert!(done, "Alg3 reset completes");
    for i in 0..n {
        assert_eq!(
            s.node(NodeId(i)).inner().reg().get(NodeId(1)).val,
            unique_value(NodeId(1), max_int),
            "value preserved at node {i}"
        );
    }
    // Snapshot after reset works and sees the preserved value.
    s.invoke_at(s.now(), NodeId(2), SnapshotOp::Snapshot);
    assert!(s.run_until_idle(100_000_000));
}

/// The paper's *seldom fairness* requirement made visible: the global
/// reset needs every node to participate, so a crashed node stalls the
/// reset (operations stay disabled) until it resumes — after which the
/// reset completes and normal operation returns. Outside reset periods no
/// fairness is needed, which is the whole point of "seldom".
#[test]
fn reset_requires_seldom_fairness() {
    let max_int = 6;
    let mut s = sim1(4, max_int, 7);
    s.crash_at(0, NodeId(3));
    // Drive the index to the threshold (majority is alive: writes work).
    for seq in 1..=max_int {
        let t = s.now() + 1;
        s.invoke_at(
            t,
            NodeId(0),
            SnapshotOp::Write(unique_value(NodeId(0), seq)),
        );
        if !s.run_until_idle(100_000_000) {
            break;
        }
    }
    // The reset cannot finish while p3 is crashed: the coordinator waits
    // for all n sync responses (the paper assumes all nodes are alive
    // during the seldom reset).
    let finished_while_crashed = s.run_while(30_000_000, |sim| {
        (0..4).any(|i| sim.node(NodeId(i)).is_wrapping() || sim.node(NodeId(i)).epoch() == 0)
    });
    assert!(
        !finished_while_crashed,
        "reset must stall without full participation"
    );
    // Resume: fairness is restored, the reset completes everywhere.
    s.resume_at(s.now() + 1, NodeId(3));
    let done = s.run_while(500_000_000, |sim| {
        (0..4).any(|i| sim.node(NodeId(i)).is_wrapping() || sim.node(NodeId(i)).epoch() == 0)
    });
    assert!(done, "reset completes once the node resumes");
    for i in 0..4 {
        assert_eq!(s.node(NodeId(i)).epoch(), 1);
    }
}
