//! The structured event schema of the trace plane.

use sss_types::{MsgKind, NodeId, OpClass, OpId};

/// Trace timestamps, in **model microseconds** — virtual time on the
/// simulator, wall time scaled by the round interval on the threaded
/// runtime (see `sss_net::MODEL_ROUND_US`), so traces from the two
/// backends line up on one axis.
pub type TraceTime = u64;

/// Why a message never reached its receiver's protocol state machine.
///
/// The first three mirror the link model's drop verdicts; `Crashed` is
/// the receiver-side case (the message left the channel but the node was
/// crashed), which both backends account as a drop.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DropCause {
    /// The directed link is cut (partition or explicit link-down).
    LinkDown,
    /// The link model's loss coin came up.
    Loss,
    /// The link's in-flight capacity was exhausted.
    Capacity,
    /// The receiver was crashed when the message arrived.
    Crashed,
}

impl DropCause {
    /// A short lowercase label for serialization.
    pub fn label(self) -> &'static str {
        match self {
            DropCause::LinkDown => "link_down",
            DropCause::Loss => "loss",
            DropCause::Capacity => "capacity",
            DropCause::Crashed => "crashed",
        }
    }
}

/// Which fault-plane injection a [`TraceEvent::Fault`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Node stops taking steps (undetectably).
    Crash,
    /// Node resumes with state intact.
    Resume,
    /// Detectable restart: variables re-initialized.
    Restart,
    /// Transient fault: soft state replaced with arbitrary values.
    Corrupt,
    /// Group-based partition applied.
    Partition,
    /// Every link restored.
    Heal,
    /// One directed link restored.
    LinkUp,
    /// One directed link cut.
    LinkDown,
    /// Node turned Byzantine: its outgoing messages are now rewritten
    /// (equivocation, stale replay, or index inflation).
    Byzantine,
    /// Node behaves honestly again (clears a `Byzantine` injection).
    Honest,
}

impl FaultKind {
    /// A short lowercase label for serialization.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::Resume => "resume",
            FaultKind::Restart => "restart",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Partition => "partition",
            FaultKind::Heal => "heal",
            FaultKind::LinkUp => "link_up",
            FaultKind::LinkDown => "link_down",
            FaultKind::Byzantine => "byzantine",
            FaultKind::Honest => "honest",
        }
    }
}

/// One structured protocol-lifecycle event.
///
/// The schema covers everything the paper's figures and theorems talk
/// about: client-boundary operations, the message plane, injected
/// faults, asynchronous-cycle boundaries, and the stabilization probe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// An operation was invoked at `node`.
    OpInvoke {
        /// The invoking node.
        node: NodeId,
        /// The driver-assigned operation id.
        id: OpId,
        /// Write or snapshot.
        class: OpClass,
    },
    /// An operation completed at `node`.
    OpComplete {
        /// The node the operation ran at.
        node: NodeId,
        /// The operation id.
        id: OpId,
        /// Write or snapshot.
        class: OpClass,
    },
    /// An operation was aborted by a global reset at `node`.
    OpAbort {
        /// The node the operation ran at.
        node: NodeId,
        /// The operation id.
        id: OpId,
    },
    /// A message was handed to the network.
    Send {
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// Message classification.
        kind: MsgKind,
        /// Encoded size in bits (the paper's accounting).
        bits: u64,
    },
    /// A message reached its receiver's protocol state machine.
    Deliver {
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// Message classification.
        kind: MsgKind,
    },
    /// A message was dropped.
    Drop {
        /// Sender.
        from: NodeId,
        /// Intended receiver.
        to: NodeId,
        /// Message classification.
        kind: MsgKind,
        /// Why it was dropped.
        cause: DropCause,
    },
    /// A fault-plane injection fired.
    Fault {
        /// What was injected.
        kind: FaultKind,
        /// The affected node (`None` for global events: partitions and
        /// heals).
        node: Option<NodeId>,
        /// The receiver side for link events.
        peer: Option<NodeId>,
    },
    /// An asynchronous-cycle boundary was reached (§2's time unit).
    CycleEnd {
        /// Zero-based index of the completed cycle.
        index: u64,
    },
    /// `node`'s post-corruption state re-converged: its local portion of
    /// the algorithm's consistency invariants holds again. Emitted once
    /// per corruption, the first time the probe passes after the fault.
    Stabilized {
        /// The recovered node.
        node: NodeId,
    },
    /// A bounded-counter probe changed at `node`: its global-reset epoch
    /// advanced (a Section 5 reset installed) and/or its stale-epoch
    /// discard counter grew (the epoch envelope rejected replays).
    /// Emitted by drivers that poll `Protocol::epoch_probe` after each
    /// step; never emitted for protocols without an epoch envelope.
    EpochChange {
        /// The node whose probe changed.
        node: NodeId,
        /// Its current global-reset epoch.
        epoch: u64,
        /// Its cumulative count of stale-epoch discards.
        stale_dropped: u64,
    },
    /// A node drained an inbox backlog and applied it as one protocol
    /// step (threaded runtime's batched message path). Makes batch sizes
    /// and coalescing rates observable per wakeup.
    BatchDrain {
        /// The draining node.
        node: NodeId,
        /// Data-plane messages applied in this batch.
        drained: u32,
        /// Outgoing messages absorbed into earlier ones by per-link
        /// coalescing when this batch's sends were flushed.
        coalesced: u32,
    },
}

impl TraceEvent {
    /// The node this event is scoped to for the per-node flight
    /// recorder: the acting node for operations and faults, the sender
    /// for sends and drops, the receiver for deliveries. `None` for
    /// global events (partitions, heals, cycle boundaries).
    pub fn scope(&self) -> Option<NodeId> {
        match self {
            TraceEvent::OpInvoke { node, .. }
            | TraceEvent::OpComplete { node, .. }
            | TraceEvent::OpAbort { node, .. }
            | TraceEvent::BatchDrain { node, .. }
            | TraceEvent::EpochChange { node, .. }
            | TraceEvent::Stabilized { node } => Some(*node),
            TraceEvent::Send { from, .. } | TraceEvent::Drop { from, .. } => Some(*from),
            TraceEvent::Deliver { to, .. } => Some(*to),
            TraceEvent::Fault { node, .. } => *node,
            TraceEvent::CycleEnd { .. } => None,
        }
    }
}

/// One emitted event with its global sequence number and timestamp.
///
/// Sequence numbers are assigned in emission order under one lock, so a
/// trace's records are totally ordered even when the threaded runtime
/// emits from many threads at once.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Global emission sequence number (dense from 0).
    pub seq: u64,
    /// Model-microsecond timestamp (see [`TraceTime`]).
    pub at: TraceTime,
    /// The event.
    pub event: TraceEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_picks_the_acting_node() {
        assert_eq!(
            TraceEvent::Send {
                from: NodeId(2),
                to: NodeId(0),
                kind: MsgKind::Write,
                bits: 64
            }
            .scope(),
            Some(NodeId(2))
        );
        assert_eq!(
            TraceEvent::Deliver {
                from: NodeId(2),
                to: NodeId(0),
                kind: MsgKind::Write
            }
            .scope(),
            Some(NodeId(0))
        );
        assert_eq!(TraceEvent::CycleEnd { index: 3 }.scope(), None);
        assert_eq!(
            TraceEvent::Fault {
                kind: FaultKind::Heal,
                node: None,
                peer: None
            }
            .scope(),
            None
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(DropCause::LinkDown.label(), "link_down");
        assert_eq!(FaultKind::Corrupt.label(), "corrupt");
    }
}
