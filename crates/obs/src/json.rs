//! Hand-rolled JSON rendering of trace records (the workspace vendors no
//! serde; the schema is flat enough that string assembly is simpler and
//! faster anyway).

use crate::event::{TraceEvent, TraceRecord};

/// Renders one record as a single JSONL object (no trailing newline).
pub(crate) fn to_jsonl(rec: &TraceRecord) -> String {
    let head = format!("{{\"seq\":{},\"t\":{}", rec.seq, rec.at);
    let body = match &rec.event {
        TraceEvent::OpInvoke { node, id, class } => format!(
            "\"ev\":\"op_invoke\",\"node\":{},\"op\":{},\"class\":\"{}\"",
            node.index(),
            id.0,
            class.label()
        ),
        TraceEvent::OpComplete { node, id, class } => format!(
            "\"ev\":\"op_complete\",\"node\":{},\"op\":{},\"class\":\"{}\"",
            node.index(),
            id.0,
            class.label()
        ),
        TraceEvent::OpAbort { node, id } => format!(
            "\"ev\":\"op_abort\",\"node\":{},\"op\":{}",
            node.index(),
            id.0
        ),
        TraceEvent::Send {
            from,
            to,
            kind,
            bits,
        } => format!(
            "\"ev\":\"send\",\"from\":{},\"to\":{},\"kind\":\"{:?}\",\"bits\":{}",
            from.index(),
            to.index(),
            kind,
            bits
        ),
        TraceEvent::Deliver { from, to, kind } => format!(
            "\"ev\":\"deliver\",\"from\":{},\"to\":{},\"kind\":\"{:?}\"",
            from.index(),
            to.index(),
            kind
        ),
        TraceEvent::Drop {
            from,
            to,
            kind,
            cause,
        } => format!(
            "\"ev\":\"drop\",\"from\":{},\"to\":{},\"kind\":\"{:?}\",\"cause\":\"{}\"",
            from.index(),
            to.index(),
            kind,
            cause.label()
        ),
        TraceEvent::Fault { kind, node, peer } => {
            let mut s = format!("\"ev\":\"fault\",\"kind\":\"{}\"", kind.label());
            if let Some(n) = node {
                s.push_str(&format!(",\"node\":{}", n.index()));
            }
            if let Some(p) = peer {
                s.push_str(&format!(",\"peer\":{}", p.index()));
            }
            s
        }
        TraceEvent::CycleEnd { index } => format!("\"ev\":\"cycle_end\",\"index\":{index}"),
        TraceEvent::Stabilized { node } => {
            format!("\"ev\":\"stabilized\",\"node\":{}", node.index())
        }
        TraceEvent::BatchDrain {
            node,
            drained,
            coalesced,
        } => format!(
            "\"ev\":\"batch_drain\",\"node\":{},\"drained\":{},\"coalesced\":{}",
            node.index(),
            drained,
            coalesced
        ),
        TraceEvent::EpochChange {
            node,
            epoch,
            stale_dropped,
        } => format!(
            "\"ev\":\"epoch_change\",\"node\":{},\"epoch\":{},\"stale_dropped\":{}",
            node.index(),
            epoch,
            stale_dropped
        ),
    };
    format!("{head},{body}}}")
}

/// Renders one record as a Chrome `trace_event` object (no trailing
/// comma/newline): operations become async begin/end pairs, everything
/// else instant events. Timestamps are already microseconds, which is
/// what the format expects.
pub(crate) fn to_chrome(rec: &TraceRecord) -> String {
    let instant = |name: String, tid: usize, scope: &str| {
        format!(
            "{{\"name\":\"{name}\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":{tid},\"s\":\"{scope}\"}}",
            rec.at
        )
    };
    match &rec.event {
        TraceEvent::OpInvoke { node, id, class } => format!(
            "{{\"name\":\"{}\",\"cat\":\"op\",\"ph\":\"b\",\"id\":{},\"ts\":{},\"pid\":0,\"tid\":{}}}",
            class.label(),
            id.0,
            rec.at,
            node.index()
        ),
        TraceEvent::OpComplete { node, id, class } => format!(
            "{{\"name\":\"{}\",\"cat\":\"op\",\"ph\":\"e\",\"id\":{},\"ts\":{},\"pid\":0,\"tid\":{}}}",
            class.label(),
            id.0,
            rec.at,
            node.index()
        ),
        TraceEvent::OpAbort { node, id } => format!(
            "{{\"name\":\"abort\",\"cat\":\"op\",\"ph\":\"e\",\"id\":{},\"ts\":{},\"pid\":0,\"tid\":{}}}",
            id.0,
            rec.at,
            node.index()
        ),
        TraceEvent::Send { from, to, kind, .. } => instant(
            format!("{kind:?} \u{2192} p{}", to.index()),
            from.index(),
            "t",
        ),
        TraceEvent::Deliver { from, to, kind } => instant(
            format!("{kind:?} \u{2190} p{}", from.index()),
            to.index(),
            "t",
        ),
        TraceEvent::Drop {
            from, kind, cause, ..
        } => instant(
            format!("drop {kind:?} ({})", cause.label()),
            from.index(),
            "t",
        ),
        TraceEvent::Fault { kind, node, .. } => match node {
            Some(n) => instant(format!("fault: {}", kind.label()), n.index(), "p"),
            None => instant(format!("fault: {}", kind.label()), 0, "g"),
        },
        TraceEvent::CycleEnd { index } => instant(format!("cycle {index}"), 0, "g"),
        TraceEvent::Stabilized { node } => instant("stabilized".into(), node.index(), "p"),
        TraceEvent::BatchDrain {
            node,
            drained,
            coalesced,
        } => instant(
            format!("batch {drained} (-{coalesced})"),
            node.index(),
            "t",
        ),
        TraceEvent::EpochChange { node, epoch, .. } => {
            instant(format!("epoch {epoch}"), node.index(), "p")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DropCause;
    use sss_types::{MsgKind, NodeId, OpClass, OpId};

    fn rec(event: TraceEvent) -> TraceRecord {
        TraceRecord {
            seq: 7,
            at: 1234,
            event,
        }
    }

    #[test]
    fn jsonl_is_one_flat_object() {
        let s = to_jsonl(&rec(TraceEvent::OpInvoke {
            node: NodeId(1),
            id: OpId(42),
            class: OpClass::Snapshot,
        }));
        assert_eq!(
            s,
            "{\"seq\":7,\"t\":1234,\"ev\":\"op_invoke\",\"node\":1,\"op\":42,\"class\":\"snapshot\"}"
        );
        let s = to_jsonl(&rec(TraceEvent::Drop {
            from: NodeId(0),
            to: NodeId(2),
            kind: MsgKind::Gossip,
            cause: DropCause::Loss,
        }));
        assert!(s.contains("\"cause\":\"loss\""), "{s}");
    }

    #[test]
    fn chrome_ops_pair_up_by_id() {
        let b = to_chrome(&rec(TraceEvent::OpInvoke {
            node: NodeId(0),
            id: OpId(3),
            class: OpClass::Write,
        }));
        let e = to_chrome(&rec(TraceEvent::OpComplete {
            node: NodeId(0),
            id: OpId(3),
            class: OpClass::Write,
        }));
        assert!(b.contains("\"ph\":\"b\"") && b.contains("\"id\":3"), "{b}");
        assert!(e.contains("\"ph\":\"e\"") && e.contains("\"id\":3"), "{e}");
    }
}
