//! Pluggable trace sinks: in-memory, live subscription, JSONL, and
//! Chrome `trace_event` JSON.

use crate::event::TraceRecord;
use crate::json;
use parking_lot::Mutex;
use std::fs::File;
use std::io::{BufWriter, Result as IoResult, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvError, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::Duration;

/// A destination for trace records.
///
/// Sinks receive every record in global sequence order, under the
/// tracer's emission lock, so implementations need no synchronization of
/// their own but must stay cheap — an expensive sink stalls emitters.
pub trait TraceSink: Send {
    /// Consumes one record.
    fn record(&mut self, rec: &TraceRecord);

    /// Flushes any buffered output. Called by [`crate::Tracer::flush`]
    /// and when the tracer is dropped.
    fn flush(&mut self) {}
}

/// An unbounded in-memory sink for tests and experiments.
///
/// [`MemorySink::new`] returns the sink (to hand to the tracer) and a
/// [`TraceBuffer`] handle that reads the accumulated records back out.
pub struct MemorySink {
    buf: Arc<Mutex<Vec<TraceRecord>>>,
}

/// The read side of a [`MemorySink`].
#[derive(Clone)]
pub struct TraceBuffer {
    buf: Arc<Mutex<Vec<TraceRecord>>>,
}

impl MemorySink {
    /// Creates an empty sink plus the handle that reads it back.
    #[allow(clippy::new_ret_no_self)]
    pub fn new() -> (MemorySink, TraceBuffer) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        (MemorySink { buf: buf.clone() }, TraceBuffer { buf })
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, rec: &TraceRecord) {
        self.buf.lock().push(rec.clone());
    }
}

impl TraceBuffer {
    /// A snapshot of every record captured so far, in sequence order.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.buf.lock().clone()
    }

    /// Number of records captured so far.
    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    /// Whether nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every captured record (e.g. between warm-up and the
    /// measured window of an experiment).
    pub fn clear(&self) {
        self.buf.lock().clear();
    }
}

/// A live subscription sink: forwards every record over a channel to a
/// consumer thread (monitoring dashboards, the `cluster_monitor`
/// example).
///
/// Two flavours: [`SubscriberSink::unbounded`] never drops, and
/// [`SubscriberSink::bounded`] sheds records when the consumer lags
/// rather than stalling the protocol — [`SubscriberSink`] counts what it
/// shed so consumers can report the gap.
pub enum SubscriberSink {
    /// Never drops; the channel grows if the consumer lags.
    Unbounded(Sender<TraceRecord>),
    /// Sheds records when the channel is full, counting the casualties.
    Bounded {
        /// The bounded channel's send side.
        tx: SyncSender<TraceRecord>,
        /// Records shed because the consumer lagged.
        shed: Arc<AtomicU64>,
    },
}

/// The consumer side of a [`SubscriberSink`]: the record stream plus the
/// shed counter, in one handle.
///
/// The shed counter is written by the *producer* (the tracer's emission
/// path) whenever the channel is full, so [`Subscription::shed`] tells a
/// consumer exactly how many records it missed — live, not only at the
/// end of the run. A consumer that sees the counter move knows its view
/// has gaps; one that sees it stay zero knows the stream is complete.
pub struct Subscription {
    rx: Receiver<TraceRecord>,
    shed: Arc<AtomicU64>,
}

impl Subscription {
    /// Blocks until the next record, or `Err` once every producer handle
    /// is gone and the channel is drained.
    pub fn recv(&self) -> Result<TraceRecord, RecvError> {
        self.rx.recv()
    }

    /// Like [`Subscription::recv`] with a deadline — the idiom for a
    /// dashboard loop that must keep repainting while the cluster idles.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<TraceRecord, RecvTimeoutError> {
        self.rx.recv_timeout(timeout)
    }

    /// The next record if one is already queued (never blocks).
    pub fn try_recv(&self) -> Option<TraceRecord> {
        self.rx.try_recv().ok()
    }

    /// Records the producer shed because this consumer lagged. `0` for
    /// unbounded subscriptions.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// An iterator over incoming records; ends when producers hang up.
    pub fn iter(&self) -> impl Iterator<Item = TraceRecord> + '_ {
        self.rx.iter()
    }
}

impl SubscriberSink {
    /// An unbounded subscription: `(sink, subscription)`. The
    /// subscription's shed counter stays 0.
    pub fn unbounded() -> (SubscriberSink, Subscription) {
        let (tx, rx) = std::sync::mpsc::channel();
        (
            SubscriberSink::Unbounded(tx),
            Subscription {
                rx,
                shed: Arc::new(AtomicU64::new(0)),
            },
        )
    }

    /// A bounded subscription that sheds when the consumer is more than
    /// `depth` records behind: `(sink, subscription)`. The producer
    /// never blocks; the subscription's shed counter reports the gap.
    pub fn bounded(depth: usize) -> (SubscriberSink, Subscription) {
        let (tx, rx) = std::sync::mpsc::sync_channel(depth);
        let shed = Arc::new(AtomicU64::new(0));
        (
            SubscriberSink::Bounded {
                tx,
                shed: shed.clone(),
            },
            Subscription { rx, shed },
        )
    }
}

impl TraceSink for SubscriberSink {
    fn record(&mut self, rec: &TraceRecord) {
        match self {
            // A hung-up consumer is not an error: the run outlives it.
            SubscriberSink::Unbounded(tx) => {
                let _ = tx.send(rec.clone());
            }
            SubscriberSink::Bounded { tx, shed } => match tx.try_send(rec.clone()) {
                Ok(()) | Err(TrySendError::Disconnected(_)) => {}
                Err(TrySendError::Full(_)) => {
                    shed.fetch_add(1, Ordering::Relaxed);
                }
            },
        }
    }
}

/// Writes one JSON object per line — the interchange format for offline
/// analysis (`jq`, pandas, the CI artifact).
pub struct JsonlSink {
    out: BufWriter<File>,
}

impl JsonlSink {
    /// Creates (truncating) the file at `path`.
    pub fn create(path: impl AsRef<Path>) -> IoResult<JsonlSink> {
        Ok(JsonlSink {
            out: BufWriter::new(File::create(path)?),
        })
    }
}

impl TraceSink for JsonlSink {
    fn record(&mut self, rec: &TraceRecord) {
        let _ = writeln!(self.out, "{}", json::to_jsonl(rec));
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// Writes Chrome `trace_event` JSON, loadable in `chrome://tracing` or
/// <https://ui.perfetto.dev>: operations render as async spans per node
/// track, messages / faults / stabilization probes as instants.
///
/// Records stream to disk as they arrive; the closing bracket is written
/// on flush (flushing more than once still yields valid JSON because the
/// file is rewritten from a buffered tail marker — in practice, flush
/// happens once, at the end of the run).
pub struct ChromeTraceSink {
    out: BufWriter<File>,
    wrote_any: bool,
    closed: bool,
}

impl ChromeTraceSink {
    /// Creates (truncating) the file at `path` and writes the preamble.
    pub fn create(path: impl AsRef<Path>) -> IoResult<ChromeTraceSink> {
        let mut out = BufWriter::new(File::create(path)?);
        write!(out, "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
        Ok(ChromeTraceSink {
            out,
            wrote_any: false,
            closed: false,
        })
    }
}

impl TraceSink for ChromeTraceSink {
    fn record(&mut self, rec: &TraceRecord) {
        if self.closed {
            return;
        }
        let sep = if self.wrote_any { "," } else { "" };
        let _ = write!(self.out, "{sep}{}", json::to_chrome(rec));
        self.wrote_any = true;
    }

    fn flush(&mut self) {
        if !self.closed {
            let _ = write!(self.out, "]}}");
            self.closed = true;
        }
        let _ = self.out.flush();
    }
}

impl Drop for ChromeTraceSink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use sss_types::{NodeId, OpClass, OpId};

    fn rec(seq: u64) -> TraceRecord {
        TraceRecord {
            seq,
            at: seq * 10,
            event: TraceEvent::OpInvoke {
                node: NodeId(0),
                id: OpId(seq),
                class: OpClass::Write,
            },
        }
    }

    #[test]
    fn memory_sink_round_trips() {
        let (mut sink, buf) = MemorySink::new();
        assert!(buf.is_empty());
        sink.record(&rec(0));
        sink.record(&rec(1));
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.records()[1].seq, 1);
        buf.clear();
        assert!(buf.is_empty());
    }

    #[test]
    fn bounded_subscriber_sheds_instead_of_blocking() {
        let (mut sink, sub) = SubscriberSink::bounded(1);
        sink.record(&rec(0));
        sink.record(&rec(1)); // full → shed
        assert_eq!(sub.shed(), 1);
        assert_eq!(sub.recv().unwrap().seq, 0);
        drop(sub);
        sink.record(&rec(2)); // hung-up consumer → quietly ignored
    }

    #[test]
    fn slow_consumer_sheds_accurately_and_never_stalls_the_producer() {
        // Regression: a consumer that never drains must cost the
        // producer nothing but a failed try_send, and the subscription
        // must report exactly how many records it missed.
        let depth = 16;
        let emitted = 1000u64;
        let (mut sink, sub) = SubscriberSink::bounded(depth);
        let start = std::time::Instant::now();
        for i in 0..emitted {
            sink.record(&rec(i));
        }
        // 1000 try_sends, 984 of them failing, must be near-instant; a
        // blocking producer would hang forever (channel never drained).
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "producer stalled behind a slow consumer"
        );
        assert_eq!(
            sub.shed(),
            emitted - depth as u64,
            "shed counter accounts for every record beyond the channel depth"
        );
        // The consumer's view is exactly the first `depth` records.
        let mut got = 0u64;
        while let Some(r) = sub.try_recv() {
            assert_eq!(r.seq, got);
            got += 1;
        }
        assert_eq!(got, depth as u64);
        assert_eq!(got + sub.shed(), emitted, "no record unaccounted for");
    }

    #[test]
    fn unbounded_subscription_reports_zero_shed() {
        let (mut sink, sub) = SubscriberSink::unbounded();
        for i in 0..100 {
            sink.record(&rec(i));
        }
        drop(sink); // hang up so the iterator terminates
        assert_eq!(sub.shed(), 0);
        assert_eq!(sub.iter().count(), 100);
    }

    #[test]
    fn jsonl_and_chrome_files_are_well_formed() {
        let dir = std::env::temp_dir();
        let jsonl = dir.join("sss_obs_test_trace.jsonl");
        let chrome = dir.join("sss_obs_test_trace.json");

        let mut s = JsonlSink::create(&jsonl).unwrap();
        s.record(&rec(0));
        s.record(&rec(1));
        s.flush();
        let text = std::fs::read_to_string(&jsonl).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));

        let mut c = ChromeTraceSink::create(&chrome).unwrap();
        c.record(&rec(0));
        c.record(&rec(1));
        drop(c); // drop flushes and closes the JSON
        let text = std::fs::read_to_string(&chrome).unwrap();
        assert!(text.starts_with('{') && text.ends_with('}'), "{text}");
        assert_eq!(text.matches("\"ph\":\"b\"").count(), 2);

        let _ = std::fs::remove_file(jsonl);
        let _ = std::fs::remove_file(chrome);
    }
}
