//! The [`Tracer`] handle both backends emit through.

use crate::event::{TraceEvent, TraceRecord, TraceTime};
use crate::sink::TraceSink;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// Default flight-recorder depth per node (and for the global ring).
pub const DEFAULT_RING_CAPACITY: usize = 256;

struct State {
    /// Next global sequence number.
    seq: u64,
    /// Per-node flight-recorder rings.
    rings: Vec<VecDeque<TraceRecord>>,
    /// Ring for global events (partitions, heals, cycle boundaries).
    global: VecDeque<TraceRecord>,
    /// Ring capacity.
    cap: usize,
    /// Attached sinks; every record goes to every sink.
    sinks: Vec<Box<dyn TraceSink>>,
}

struct Inner {
    state: Mutex<State>,
}

/// The cloneable emission handle of the trace plane.
///
/// A tracer is either **off** — a null pointer, so [`Tracer::is_on`] is
/// one branch, [`Tracer::emit`] returns immediately, and callers that
/// gate event *construction* behind `is_on()` pay nothing at all — or
/// **on**, in which case every emitted event is stamped with a global
/// sequence number, appended to the scoped node's bounded flight-recorder
/// ring, and forwarded to every attached sink.
///
/// Clones share the same state: both backends hand clones to their
/// node/client threads and all emissions interleave into one totally
/// ordered record stream.
///
/// ```
/// use sss_obs::{MemorySink, TraceEvent, Tracer};
/// use sss_types::NodeId;
///
/// let off = Tracer::off();
/// assert!(!off.is_on()); // emit() on this handle is a no-op
///
/// let (sink, buf) = MemorySink::new();
/// let tracer = Tracer::new(3).with_sink(sink);
/// tracer.emit(42, TraceEvent::Stabilized { node: NodeId(1) });
/// assert_eq!(buf.len(), 1);
/// assert_eq!(tracer.flight(NodeId(1)).len(), 1);
/// ```
#[derive(Clone, Default)]
pub struct Tracer(Option<Arc<Inner>>);

impl Tracer {
    /// The disabled tracer: every operation is a no-op.
    pub fn off() -> Tracer {
        Tracer(None)
    }

    /// An enabled tracer for `n` nodes with the default ring capacity
    /// and no sinks (the flight recorder alone).
    pub fn new(n: usize) -> Tracer {
        Tracer(Some(Arc::new(Inner {
            state: Mutex::new(State {
                seq: 0,
                rings: (0..n).map(|_| VecDeque::new()).collect(),
                global: VecDeque::new(),
                cap: DEFAULT_RING_CAPACITY,
                sinks: Vec::new(),
            }),
        })))
    }

    /// Sets the per-ring capacity (builder style). No-op when off.
    pub fn with_ring_capacity(self, cap: usize) -> Tracer {
        if let Some(inner) = &self.0 {
            let mut st = inner.state.lock();
            st.cap = cap.max(1);
            let cap = st.cap;
            let State { rings, global, .. } = &mut *st;
            for ring in rings.iter_mut().chain(std::iter::once(global)) {
                while ring.len() > cap {
                    ring.pop_front();
                }
            }
        }
        self
    }

    /// Attaches a sink (builder style). No-op when off.
    pub fn with_sink(self, sink: impl TraceSink + 'static) -> Tracer {
        if let Some(inner) = &self.0 {
            inner.state.lock().sinks.push(Box::new(sink));
        }
        self
    }

    /// Whether this tracer records anything. Hot paths gate event
    /// construction behind this so a disabled tracer costs one branch.
    #[inline]
    pub fn is_on(&self) -> bool {
        self.0.is_some()
    }

    /// Records one event at model time `at` (microseconds): stamps it
    /// with the next global sequence number, appends it to the scoped
    /// flight-recorder ring, and forwards it to every sink. No-op when
    /// off.
    pub fn emit(&self, at: TraceTime, event: TraceEvent) {
        let Some(inner) = &self.0 else { return };
        let mut st = inner.state.lock();
        let rec = TraceRecord {
            seq: st.seq,
            at,
            event,
        };
        st.seq += 1;
        for sink in &mut st.sinks {
            sink.record(&rec);
        }
        let cap = st.cap;
        let ring = match rec.event.scope() {
            Some(node) => match st.rings.get_mut(node.index()) {
                Some(r) => r,
                None => &mut st.global,
            },
            None => &mut st.global,
        };
        if ring.len() == cap {
            ring.pop_front();
        }
        ring.push_back(rec);
    }

    /// Total events emitted so far (0 when off).
    pub fn emitted(&self) -> u64 {
        self.0.as_ref().map_or(0, |i| i.state.lock().seq)
    }

    /// The flight recorder of `node`: its most recent scoped records in
    /// sequence order. Empty when off or for an unknown node.
    pub fn flight(&self, node: sss_types::NodeId) -> Vec<TraceRecord> {
        self.0.as_ref().map_or_else(Vec::new, |i| {
            i.state
                .lock()
                .rings
                .get(node.index())
                .map_or_else(Vec::new, |r| r.iter().cloned().collect())
        })
    }

    /// The global flight recorder: recent unscoped records (partitions,
    /// heals, cycle boundaries). Empty when off.
    pub fn flight_global(&self) -> Vec<TraceRecord> {
        self.0.as_ref().map_or_else(Vec::new, |i| {
            i.state.lock().global.iter().cloned().collect()
        })
    }

    /// Flushes every attached sink. No-op when off.
    pub fn flush(&self) {
        if let Some(inner) = &self.0 {
            for sink in &mut inner.state.lock().sinks {
                sink.flush();
            }
        }
    }
}

impl Drop for Tracer {
    fn drop(&mut self) {
        // Flush through the last handle so file sinks are complete even
        // if the caller forgot an explicit flush().
        if let Some(inner) = self.0.take() {
            if Arc::strong_count(&inner) == 1 {
                for sink in &mut inner.state.lock().sinks {
                    sink.flush();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;
    use sss_types::{MsgKind, NodeId};

    fn send(from: usize, to: usize) -> TraceEvent {
        TraceEvent::Send {
            from: NodeId(from),
            to: NodeId(to),
            kind: MsgKind::Gossip,
            bits: 64,
        }
    }

    #[test]
    fn off_tracer_is_inert() {
        let t = Tracer::off();
        assert!(!t.is_on());
        t.emit(0, send(0, 1));
        assert_eq!(t.emitted(), 0);
        assert!(t.flight(NodeId(0)).is_empty());
        assert!(t.flight_global().is_empty());
        t.flush();
    }

    #[test]
    fn sequence_numbers_are_dense_and_ordered() {
        let (sink, buf) = MemorySink::new();
        let t = Tracer::new(2).with_sink(sink);
        for i in 0..5 {
            t.emit(i, send(0, 1));
        }
        let recs = buf.records();
        assert_eq!(recs.len(), 5);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
        }
        assert_eq!(t.emitted(), 5);
    }

    #[test]
    fn flight_recorder_is_bounded_and_scoped() {
        let t = Tracer::new(2).with_ring_capacity(3);
        for i in 0..10 {
            t.emit(i, send(0, 1));
        }
        t.emit(10, TraceEvent::CycleEnd { index: 0 });
        let ring = t.flight(NodeId(0));
        assert_eq!(ring.len(), 3, "ring bounded at capacity");
        assert_eq!(ring.last().unwrap().seq, 9, "keeps the newest");
        assert!(t.flight(NodeId(1)).is_empty(), "sends scope to sender");
        assert_eq!(t.flight_global().len(), 1, "cycle ends are global");
    }

    #[test]
    fn clones_share_one_stream() {
        let (sink, buf) = MemorySink::new();
        let t = Tracer::new(2).with_sink(sink);
        let t2 = t.clone();
        t.emit(0, send(0, 1));
        t2.emit(1, send(1, 0));
        assert_eq!(
            buf.records().iter().map(|r| r.seq).collect::<Vec<_>>(),
            [0, 1]
        );
    }
}
