//! The [`Tracer`] handle both backends emit through.

use crate::event::{TraceEvent, TraceRecord, TraceTime};
use crate::sink::TraceSink;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Default flight-recorder depth per node (and for the global ring).
pub const DEFAULT_RING_CAPACITY: usize = 256;

/// A bit-set of [`TraceEvent`] categories a tracer records.
///
/// The mask is checked **before** the emission lock: a masked-out event
/// costs one atomic load and a branch, no lock and no sequence number.
/// That is what lets a live monitoring consumer ride a hot run — the
/// ops-plane preset ([`EventMask::OPS_PLANE`]) excludes the per-message
/// `Send`/`Deliver` flood (the overwhelming majority of a run's events)
/// while keeping everything a dashboard needs: operations, drops,
/// faults, cycle boundaries, and stabilization probes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventMask(u32);

impl EventMask {
    /// `OpInvoke` events.
    pub const OP_INVOKE: EventMask = EventMask(1 << 0);
    /// `OpComplete` events.
    pub const OP_COMPLETE: EventMask = EventMask(1 << 1);
    /// `OpAbort` events.
    pub const OP_ABORT: EventMask = EventMask(1 << 2);
    /// `Send` events (per-message; the bulk of a trace).
    pub const SEND: EventMask = EventMask(1 << 3);
    /// `Deliver` events (per-message; the bulk of a trace).
    pub const DELIVER: EventMask = EventMask(1 << 4);
    /// `Drop` events.
    pub const DROP: EventMask = EventMask(1 << 5);
    /// `Fault` events.
    pub const FAULT: EventMask = EventMask(1 << 6);
    /// `CycleEnd` events.
    pub const CYCLE_END: EventMask = EventMask(1 << 7);
    /// `Stabilized` probes.
    pub const STABILIZED: EventMask = EventMask(1 << 8);
    /// `BatchDrain` events.
    pub const BATCH_DRAIN: EventMask = EventMask(1 << 9);
    /// `EpochChange` probes (bounded-counter epoch/stale-drop changes).
    pub const EPOCH_CHANGE: EventMask = EventMask(1 << 10);

    /// Every event category (the default).
    pub const ALL: EventMask = EventMask((1 << 11) - 1);

    /// The live ops-plane preset: everything **except** the per-message
    /// `Send`/`Deliver` flood. Operations, drops, faults, cycles,
    /// stabilization probes, and batch drains are retained — the full
    /// signal a dashboard folds, at a per-event rate orders of magnitude
    /// below the message plane's.
    pub const OPS_PLANE: EventMask = EventMask(Self::ALL.0 & !Self::SEND.0 & !Self::DELIVER.0);

    /// The union of two masks.
    pub const fn union(self, other: EventMask) -> EventMask {
        EventMask(self.0 | other.0)
    }

    /// Whether this mask records `event`'s category.
    #[inline]
    pub fn accepts(self, event: &TraceEvent) -> bool {
        let bit = match event {
            TraceEvent::OpInvoke { .. } => Self::OP_INVOKE,
            TraceEvent::OpComplete { .. } => Self::OP_COMPLETE,
            TraceEvent::OpAbort { .. } => Self::OP_ABORT,
            TraceEvent::Send { .. } => Self::SEND,
            TraceEvent::Deliver { .. } => Self::DELIVER,
            TraceEvent::Drop { .. } => Self::DROP,
            TraceEvent::Fault { .. } => Self::FAULT,
            TraceEvent::CycleEnd { .. } => Self::CYCLE_END,
            TraceEvent::Stabilized { .. } => Self::STABILIZED,
            TraceEvent::BatchDrain { .. } => Self::BATCH_DRAIN,
            TraceEvent::EpochChange { .. } => Self::EPOCH_CHANGE,
        };
        self.0 & bit.0 != 0
    }

    /// The raw bit representation (for the atomic slot in the tracer).
    const fn bits(self) -> u32 {
        self.0
    }
}

impl Default for EventMask {
    fn default() -> Self {
        EventMask::ALL
    }
}

struct State {
    /// Next global sequence number.
    seq: u64,
    /// Per-node flight-recorder rings.
    rings: Vec<VecDeque<TraceRecord>>,
    /// Ring for global events (partitions, heals, cycle boundaries).
    global: VecDeque<TraceRecord>,
    /// Ring capacity.
    cap: usize,
    /// Attached sinks; every record goes to every sink.
    sinks: Vec<Box<dyn TraceSink>>,
}

struct Inner {
    state: Mutex<State>,
    /// The event-category filter, readable without the emission lock.
    mask: AtomicU32,
}

/// The cloneable emission handle of the trace plane.
///
/// A tracer is either **off** — a null pointer, so [`Tracer::is_on`] is
/// one branch, [`Tracer::emit`] returns immediately, and callers that
/// gate event *construction* behind `is_on()` pay nothing at all — or
/// **on**, in which case every emitted event is stamped with a global
/// sequence number, appended to the scoped node's bounded flight-recorder
/// ring, and forwarded to every attached sink.
///
/// Clones share the same state: both backends hand clones to their
/// node/client threads and all emissions interleave into one totally
/// ordered record stream.
///
/// ```
/// use sss_obs::{MemorySink, TraceEvent, Tracer};
/// use sss_types::NodeId;
///
/// let off = Tracer::off();
/// assert!(!off.is_on()); // emit() on this handle is a no-op
///
/// let (sink, buf) = MemorySink::new();
/// let tracer = Tracer::new(3).with_sink(sink);
/// tracer.emit(42, TraceEvent::Stabilized { node: NodeId(1) });
/// assert_eq!(buf.len(), 1);
/// assert_eq!(tracer.flight(NodeId(1)).len(), 1);
/// ```
#[derive(Clone, Default)]
pub struct Tracer(Option<Arc<Inner>>);

impl Tracer {
    /// The disabled tracer: every operation is a no-op.
    pub fn off() -> Tracer {
        Tracer(None)
    }

    /// An enabled tracer for `n` nodes with the default ring capacity
    /// and no sinks (the flight recorder alone).
    pub fn new(n: usize) -> Tracer {
        Tracer(Some(Arc::new(Inner {
            state: Mutex::new(State {
                seq: 0,
                rings: (0..n).map(|_| VecDeque::new()).collect(),
                global: VecDeque::new(),
                cap: DEFAULT_RING_CAPACITY,
                sinks: Vec::new(),
            }),
            mask: AtomicU32::new(EventMask::ALL.bits()),
        })))
    }

    /// Restricts which event categories this tracer records (builder
    /// style). Masked-out events are rejected *before* the emission
    /// lock — one atomic load and a branch — and receive no sequence
    /// number, so attached sinks see a dense filtered stream. No-op when
    /// off.
    pub fn with_mask(self, mask: EventMask) -> Tracer {
        if let Some(inner) = &self.0 {
            inner.mask.store(mask.bits(), Ordering::Relaxed);
        }
        self
    }

    /// Sets the per-ring capacity (builder style). No-op when off.
    pub fn with_ring_capacity(self, cap: usize) -> Tracer {
        if let Some(inner) = &self.0 {
            let mut st = inner.state.lock();
            st.cap = cap.max(1);
            let cap = st.cap;
            let State { rings, global, .. } = &mut *st;
            for ring in rings.iter_mut().chain(std::iter::once(global)) {
                while ring.len() > cap {
                    ring.pop_front();
                }
            }
        }
        self
    }

    /// Attaches a sink (builder style). No-op when off.
    pub fn with_sink(self, sink: impl TraceSink + 'static) -> Tracer {
        if let Some(inner) = &self.0 {
            inner.state.lock().sinks.push(Box::new(sink));
        }
        self
    }

    /// Whether this tracer records anything. Hot paths gate event
    /// construction behind this so a disabled tracer costs one branch.
    #[inline]
    pub fn is_on(&self) -> bool {
        self.0.is_some()
    }

    /// Records one event at model time `at` (microseconds): stamps it
    /// with the next global sequence number, appends it to the scoped
    /// flight-recorder ring, and forwards it to every sink. No-op when
    /// off.
    pub fn emit(&self, at: TraceTime, event: TraceEvent) {
        let Some(inner) = &self.0 else { return };
        if !EventMask(inner.mask.load(Ordering::Relaxed)).accepts(&event) {
            return;
        }
        let mut st = inner.state.lock();
        let rec = TraceRecord {
            seq: st.seq,
            at,
            event,
        };
        st.seq += 1;
        for sink in &mut st.sinks {
            sink.record(&rec);
        }
        let cap = st.cap;
        let ring = match rec.event.scope() {
            Some(node) => match st.rings.get_mut(node.index()) {
                Some(r) => r,
                None => &mut st.global,
            },
            None => &mut st.global,
        };
        if ring.len() == cap {
            ring.pop_front();
        }
        ring.push_back(rec);
    }

    /// Total events emitted so far (0 when off).
    pub fn emitted(&self) -> u64 {
        self.0.as_ref().map_or(0, |i| i.state.lock().seq)
    }

    /// The flight recorder of `node`: its most recent scoped records in
    /// sequence order. Empty when off or for an unknown node.
    pub fn flight(&self, node: sss_types::NodeId) -> Vec<TraceRecord> {
        self.0.as_ref().map_or_else(Vec::new, |i| {
            i.state
                .lock()
                .rings
                .get(node.index())
                .map_or_else(Vec::new, |r| r.iter().cloned().collect())
        })
    }

    /// The global flight recorder: recent unscoped records (partitions,
    /// heals, cycle boundaries). Empty when off.
    pub fn flight_global(&self) -> Vec<TraceRecord> {
        self.0.as_ref().map_or_else(Vec::new, |i| {
            i.state.lock().global.iter().cloned().collect()
        })
    }

    /// Flushes every attached sink. No-op when off.
    pub fn flush(&self) {
        if let Some(inner) = &self.0 {
            for sink in &mut inner.state.lock().sinks {
                sink.flush();
            }
        }
    }
}

/// A tracer can itself be attached as a **sink** of another tracer:
/// records are re-emitted through this tracer's own pipeline (mask,
/// sequence numbering, rings, sinks). That is how a long-lived ops-plane
/// tracer taps the stream of per-case tracers a chaos campaign creates
/// and tears down — the campaign attaches a clone of the ops tracer to
/// each case, and the ops plane sees one continuous stream.
///
/// Re-emitted records are re-stamped with *this* tracer's sequence
/// numbers; the upstream `seq` is dropped (the two streams have
/// different filters, so upstream numbering would be non-dense here).
impl TraceSink for Tracer {
    fn record(&mut self, rec: &TraceRecord) {
        self.emit(rec.at, rec.event.clone());
    }

    fn flush(&mut self) {
        Tracer::flush(self);
    }
}

impl Drop for Tracer {
    fn drop(&mut self) {
        // Flush through the last handle so file sinks are complete even
        // if the caller forgot an explicit flush().
        if let Some(inner) = self.0.take() {
            if Arc::strong_count(&inner) == 1 {
                for sink in &mut inner.state.lock().sinks {
                    sink.flush();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;
    use sss_types::{MsgKind, NodeId};

    fn send(from: usize, to: usize) -> TraceEvent {
        TraceEvent::Send {
            from: NodeId(from),
            to: NodeId(to),
            kind: MsgKind::Gossip,
            bits: 64,
        }
    }

    #[test]
    fn off_tracer_is_inert() {
        let t = Tracer::off();
        assert!(!t.is_on());
        t.emit(0, send(0, 1));
        assert_eq!(t.emitted(), 0);
        assert!(t.flight(NodeId(0)).is_empty());
        assert!(t.flight_global().is_empty());
        t.flush();
    }

    #[test]
    fn sequence_numbers_are_dense_and_ordered() {
        let (sink, buf) = MemorySink::new();
        let t = Tracer::new(2).with_sink(sink);
        for i in 0..5 {
            t.emit(i, send(0, 1));
        }
        let recs = buf.records();
        assert_eq!(recs.len(), 5);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
        }
        assert_eq!(t.emitted(), 5);
    }

    #[test]
    fn flight_recorder_is_bounded_and_scoped() {
        let t = Tracer::new(2).with_ring_capacity(3);
        for i in 0..10 {
            t.emit(i, send(0, 1));
        }
        t.emit(10, TraceEvent::CycleEnd { index: 0 });
        let ring = t.flight(NodeId(0));
        assert_eq!(ring.len(), 3, "ring bounded at capacity");
        assert_eq!(ring.last().unwrap().seq, 9, "keeps the newest");
        assert!(t.flight(NodeId(1)).is_empty(), "sends scope to sender");
        assert_eq!(t.flight_global().len(), 1, "cycle ends are global");
    }

    #[test]
    fn mask_filters_before_sequencing() {
        let (sink, buf) = MemorySink::new();
        let t = Tracer::new(2)
            .with_mask(EventMask::OPS_PLANE)
            .with_sink(sink);
        t.emit(0, send(0, 1)); // masked out
        t.emit(
            1,
            TraceEvent::Deliver {
                from: NodeId(0),
                to: NodeId(1),
                kind: MsgKind::Gossip,
            },
        ); // masked out
        t.emit(2, TraceEvent::Stabilized { node: NodeId(1) });
        t.emit(3, TraceEvent::CycleEnd { index: 0 });
        let recs = buf.records();
        assert_eq!(recs.len(), 2, "send/deliver rejected by the mask");
        // The surviving stream is densely renumbered.
        assert_eq!(recs[0].seq, 0);
        assert_eq!(recs[1].seq, 1);
        assert_eq!(t.emitted(), 2);
    }

    #[test]
    fn mask_accepts_matches_schema() {
        assert!(EventMask::ALL.accepts(&send(0, 1)));
        assert!(!EventMask::OPS_PLANE.accepts(&send(0, 1)));
        assert!(EventMask::OPS_PLANE.accepts(&TraceEvent::Stabilized { node: NodeId(0) }));
        assert!(EventMask::FAULT
            .union(EventMask::DROP)
            .accepts(&TraceEvent::Fault {
                kind: crate::event::FaultKind::Crash,
                node: Some(NodeId(0)),
                peer: None,
            }));
        assert!(!EventMask::FAULT.accepts(&TraceEvent::CycleEnd { index: 0 }));
    }

    #[test]
    fn tracer_as_sink_forwards_through_its_own_mask() {
        let (sink, buf) = MemorySink::new();
        let ops = Tracer::new(2)
            .with_mask(EventMask::OPS_PLANE)
            .with_sink(sink);
        // An upstream tracer (e.g. one chaos case) with the ops tracer
        // attached as a sink: full stream upstream, filtered downstream.
        let upstream = Tracer::new(2).with_sink(ops.clone());
        upstream.emit(0, send(0, 1));
        upstream.emit(1, TraceEvent::Stabilized { node: NodeId(0) });
        assert_eq!(upstream.emitted(), 2);
        assert_eq!(buf.len(), 1, "ops tracer's mask filters the tap");
        assert_eq!(
            buf.records()[0].event,
            TraceEvent::Stabilized { node: NodeId(0) }
        );
    }

    #[test]
    fn clones_share_one_stream() {
        let (sink, buf) = MemorySink::new();
        let t = Tracer::new(2).with_sink(sink);
        let t2 = t.clone();
        t.emit(0, send(0, 1));
        t2.emit(1, send(1, 0));
        assert_eq!(
            buf.records().iter().map(|r| r.seq).collect::<Vec<_>>(),
            [0, 1]
        );
    }
}
