//! The unified trace plane: structured protocol events, a per-node
//! flight recorder, and pluggable sinks, shared by **every** execution
//! backend.
//!
//! The paper's claims are *trajectory* claims — who sent what in which
//! asynchronous cycle, and how many cycles recovery from a transient
//! fault takes (§2's cycle accounting, Figures 1–3). Aggregate counters
//! cannot answer those questions; this crate makes the trajectory itself
//! observable:
//!
//! * [`TraceEvent`] — the protocol lifecycle as structured events:
//!   operation invoke/complete/abort (with [`OpClass`]), message
//!   send/deliver/drop (with [`MsgKind`] and encoded bits), fault-plan
//!   injections, asynchronous-cycle boundaries, and the [`Stabilized`]
//!   probe a backend emits when a node's post-corruption state
//!   re-converges;
//! * [`Tracer`] — the cheap, cloneable handle both backends emit
//!   through. A disabled tracer is a null pointer: [`Tracer::is_on`] is
//!   one branch and no event is ever constructed, so tracing is
//!   zero-cost when off;
//! * a bounded per-node **flight recorder** ring that is cheap enough to
//!   leave on in production-shaped runs ([`Tracer::flight`]);
//! * pluggable [`TraceSink`]s: in-memory ([`MemorySink`]) for tests and
//!   experiments, JSONL ([`JsonlSink`]) for offline analysis, Chrome
//!   `trace_event` JSON ([`ChromeTraceSink`]) viewable in
//!   `chrome://tracing` / Perfetto, and a live subscription channel
//!   ([`SubscriberSink`]) for monitoring consumers;
//! * the **live ops plane** built on that subscription: the
//!   [`metrics`] aggregator folds the event stream into rolling
//!   per-node health / stabilization / quorum / latency state
//!   ([`ClusterMetrics`], turnkey via [`OpsPlane`]), the [`dash`]
//!   module renders it as a dependency-free ANSI terminal dashboard,
//!   and [`http`] serves it as `/node_info`, `/metrics` (Prometheus
//!   text), and `/shards` endpoints.
//!
//! Because the simulator and the threaded runtime emit the same schema
//! through the same handle (threaded via `sss_net::Backend::run_traced`),
//! one fault plan yields *comparable logical traces* on both execution
//! models: same kinds, same sources and destinations, timestamps in
//! model microseconds on both (virtual time for the simulator, scaled
//! wall time for threads).
//!
//! [`Stabilized`]: TraceEvent::Stabilized
//! [`OpClass`]: sss_types::OpClass
//! [`MsgKind`]: sss_types::MsgKind

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod event;
mod json;
mod jsonv;
mod sink;
mod stats;
mod tracer;

pub mod dash;
pub mod http;
pub mod metrics;

pub use event::{DropCause, FaultKind, TraceEvent, TraceRecord, TraceTime};
pub use http::OpsHttpServer;
pub use jsonv::{escape_json, JsonValue};
pub use metrics::{ClusterMetrics, FeedEntry, NodeHealth, NodeMetrics, OpsPlane, ShardGauge};
pub use sink::{
    ChromeTraceSink, JsonlSink, MemorySink, SubscriberSink, Subscription, TraceBuffer, TraceSink,
};
pub use stats::{LatencyHistogram, LatencySummary};
pub use tracer::{EventMask, Tracer, DEFAULT_RING_CAPACITY};
