//! Latency distribution summaries shared by every layer that reports
//! timing: the simulator's metrics, the sharded service's per-shard
//! stats, the bench emitters, and the live ops plane's HTTP endpoint.
//!
//! These types used to live in `sss-sim`; they moved down here so the
//! [`crate::metrics`] aggregator (which `sss-sim` itself depends on) can
//! fold trace streams into the same summaries without a dependency
//! cycle. `sss-sim` re-exports them, so `sss_sim::LatencySummary` keeps
//! working.

use crate::jsonv::JsonValue;

/// A fixed log₂-bucket histogram of latency samples: bucket `i` counts
/// samples whose value (in model microseconds) lies in
/// `[2^i, 2^(i+1))`, with `0` and `1` both landing in bucket 0 and the
/// top bucket absorbing everything ≥ `2^31`. Thirty-two buckets cover
/// half a second of model time at the top end, far beyond any
/// experiment's horizon, while the fixed shape keeps the summary `Copy`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; LatencyHistogram::BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; LatencyHistogram::BUCKETS],
        }
    }
}

impl LatencyHistogram {
    /// Number of log₂ buckets.
    pub const BUCKETS: usize = 32;

    fn bucket_index(sample: u64) -> usize {
        (63 - sample.max(1).leading_zeros() as usize).min(Self::BUCKETS - 1)
    }

    pub(crate) fn add(&mut self, sample: u64) {
        self.buckets[Self::bucket_index(sample)] += 1;
    }

    /// The count in bucket `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Total samples across all buckets.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The bucket index a sample lands in (`[2^i, 2^(i+1))`, with `0`
    /// and `1` sharing bucket 0) — public so cross-shard aggregation
    /// tests can compare percentiles at bucket resolution.
    pub fn bucket_of(sample: u64) -> usize {
        Self::bucket_index(sample)
    }

    /// The lower bound of bucket `i` (the representative value merged
    /// percentiles report).
    pub fn bucket_lo(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << i
        }
    }

    /// Adds every count of `other` into `self` (bucket-wise; exact,
    /// since both histograms share the fixed log₂ shape).
    pub fn merge_from(&mut self, other: &LatencyHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    /// The value at 1-based `rank` of the multiset this histogram
    /// summarizes, at bucket resolution: walks the buckets in order and
    /// returns the lower bound of the bucket containing that rank. The
    /// true sample at that rank lies in the same bucket, so the result
    /// is exact whenever samples sit on bucket boundaries and within a
    /// factor of 2 otherwise.
    pub fn value_at_rank(&self, rank: u64) -> u64 {
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_lo(i);
            }
        }
        Self::bucket_lo(Self::BUCKETS - 1)
    }

    /// Iterates over non-empty buckets as `(lo, hi, count)`, where the
    /// bucket spans `lo..hi` microseconds (the top bucket reports
    /// `hi = u64::MAX`).
    pub fn nonzero(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let lo = if i == 0 { 0 } else { 1u64 << i };
                let hi = if i + 1 >= Self::BUCKETS {
                    u64::MAX
                } else {
                    1u64 << (i + 1)
                };
                (lo, hi, c)
            })
    }
}

/// Summary statistics over one class's completed-operation latencies,
/// in model microseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of completed operations sampled.
    pub count: usize,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Arithmetic mean (rounded down).
    pub mean: u64,
    /// Median (nearest-rank).
    pub p50: u64,
    /// 95th percentile (nearest-rank).
    pub p95: u64,
    /// 99th percentile (nearest-rank).
    pub p99: u64,
    /// 99.9th percentile (nearest-rank).
    pub p999: u64,
    /// Sum of all samples (exact mean reconstruction across merges).
    pub sum: u64,
    /// Log₂-bucket distribution of all samples.
    pub histogram: LatencyHistogram,
}

impl LatencySummary {
    /// Builds the summary from raw samples. Percentiles use the
    /// **nearest-rank** definition: the p-th percentile is the sample at
    /// rank `⌈p/100 · count⌉` (1-based) of the sorted list — an actual
    /// sample, never an interpolated midpoint.
    pub fn from_samples(samples: &[u64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let len = sorted.len() as u64;
        // Nearest-rank with p in per-mille: rank = ⌈p·len/1000⌉ ≥ 1.
        let pct = |p_mille: u64| {
            let rank = (p_mille * len).div_ceil(1000).max(1);
            sorted[(rank - 1) as usize]
        };
        let mut histogram = LatencyHistogram::default();
        for &s in &sorted {
            histogram.add(s);
        }
        let sum = sorted.iter().sum::<u64>();
        LatencySummary {
            count: sorted.len(),
            min: sorted[0],
            max: *sorted.last().unwrap(),
            mean: sum / len,
            p50: pct(500),
            p95: pct(950),
            p99: pct(990),
            p999: pct(999),
            sum,
            histogram,
        }
    }

    /// Merges per-recorder summaries into one cross-recorder summary —
    /// the aggregation the sharded service layer needs, where each shard
    /// records its own latencies and percentiles must be reported over
    /// the union.
    ///
    /// `count`, `min`, `max`, `sum` and `mean` are exact. Percentiles
    /// are computed by nearest-rank over the **merged log₂ histograms**:
    /// the reported value is the lower bound of the bucket holding the
    /// percentile's rank. The true pooled percentile always lands in
    /// that same bucket (the histogram is the sorted multiset at bucket
    /// granularity), so merged percentiles are exact for bucket-aligned
    /// samples and within a factor of 2 otherwise — `count`-weighted
    /// aggregation of raw percentile values has no such bound.
    pub fn merge<'a>(parts: impl IntoIterator<Item = &'a LatencySummary>) -> LatencySummary {
        let mut out = LatencySummary::default();
        for part in parts {
            if part.count == 0 {
                continue;
            }
            if out.count == 0 {
                out.min = part.min;
                out.max = part.max;
            } else {
                out.min = out.min.min(part.min);
                out.max = out.max.max(part.max);
            }
            out.count += part.count;
            out.sum += part.sum;
            out.histogram.merge_from(&part.histogram);
        }
        if out.count == 0 {
            return out;
        }
        let len = out.count as u64;
        out.mean = out.sum / len;
        let pct = |p_mille: u64| {
            let rank = (p_mille * len).div_ceil(1000).max(1);
            out.histogram.value_at_rank(rank)
        };
        out.p50 = pct(500);
        out.p95 = pct(950);
        out.p99 = pct(990);
        out.p999 = pct(999);
        out
    }

    /// The summary as a JSON object — one render path shared by the
    /// live-ops HTTP endpoint and the bench emitters, so every artifact
    /// reports latency in the same schema:
    /// `{count, min_us, max_us, mean_us, p50_us, p95_us, p99_us, p999_us}`.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("count".into(), JsonValue::UInt(self.count as u64)),
            ("min_us".into(), JsonValue::UInt(self.min)),
            ("max_us".into(), JsonValue::UInt(self.max)),
            ("mean_us".into(), JsonValue::UInt(self.mean)),
            ("p50_us".into(), JsonValue::UInt(self.p50)),
            ("p95_us".into(), JsonValue::UInt(self.p95)),
            ("p99_us".into(), JsonValue::UInt(self.p99)),
            ("p999_us".into(), JsonValue::UInt(self.p999)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_on_known_small_vectors() {
        // Pinned against the textbook nearest-rank definition
        // (rank = ⌈p/100 · N⌉, 1-based), the spec this summary documents.
        let s = LatencySummary::from_samples(&[15, 20, 35, 40, 50]);
        assert_eq!(s.p50, 35, "⌈0.5·5⌉ = rank 3");
        assert_eq!(s.p95, 50, "⌈0.95·5⌉ = rank 5");
        assert_eq!(s.p99, 50);

        let s = LatencySummary::from_samples(&[3, 6, 7, 8, 8, 10, 13, 15, 16, 20]);
        assert_eq!(s.p50, 8, "⌈0.5·10⌉ = rank 5");
        assert_eq!(s.p95, 20, "⌈0.95·10⌉ = rank 10");

        let s = LatencySummary::from_samples(&[1, 2]);
        assert_eq!(s.p50, 1, "⌈0.5·2⌉ = rank 1, not the 1.5 midpoint");

        let s = LatencySummary::from_samples(&[9]);
        assert_eq!((s.p50, s.p95, s.p99, s.p999), (9, 9, 9, 9));
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let s = LatencySummary::from_samples(&[0, 1, 2, 3, 4, 1000, 1 << 40]);
        let h = s.histogram;
        assert_eq!(h.total(), 7);
        assert_eq!(h.count(0), 2, "0 and 1 share bucket 0");
        assert_eq!(h.count(1), 2, "2 and 3");
        assert_eq!(h.count(2), 1, "4");
        assert_eq!(h.count(9), 1, "1000 ∈ [512, 1024)");
        assert_eq!(h.count(31), 1, "top bucket absorbs the tail");
        let spans: Vec<_> = h.nonzero().collect();
        assert_eq!(spans[0], (0, 2, 2));
        assert_eq!(spans[1], (2, 4, 2));
        assert_eq!(spans.last().unwrap(), &(1 << 31, u64::MAX, 1));
        assert_eq!(LatencyHistogram::default().total(), 0);
    }

    #[test]
    fn merge_matches_pooled_recorder_on_bucket_aligned_samples() {
        // Samples on log₂ bucket boundaries: merged percentiles must
        // equal a pooled recorder's *exactly* (the bucket lower bound IS
        // the sample). Shards get deliberately skewed slices so the
        // merged ranks cross shard boundaries.
        let shard_a: Vec<u64> = (0..60).map(|i| 1u64 << (2 + (i % 3))).collect(); // 4,8,16
        let shard_b: Vec<u64> = (0..30).map(|_| 1u64 << 8).collect(); // 256
        let shard_c: Vec<u64> = (0..10).map(|_| 1u64 << 12).collect(); // 4096
        let pooled: Vec<u64> = shard_a
            .iter()
            .chain(&shard_b)
            .chain(&shard_c)
            .copied()
            .collect();
        let pooled = LatencySummary::from_samples(&pooled);
        let parts = [
            LatencySummary::from_samples(&shard_a),
            LatencySummary::from_samples(&shard_b),
            LatencySummary::from_samples(&shard_c),
        ];
        let merged = LatencySummary::merge(&parts);
        assert_eq!(merged.count, pooled.count);
        assert_eq!(merged.min, pooled.min);
        assert_eq!(merged.max, pooled.max);
        assert_eq!(merged.sum, pooled.sum);
        assert_eq!(merged.mean, pooled.mean);
        assert_eq!(merged.p50, pooled.p50);
        assert_eq!(merged.p95, pooled.p95);
        assert_eq!(merged.p99, pooled.p99);
        assert_eq!(merged.p999, pooled.p999);
        assert_eq!(merged.histogram, pooled.histogram);
    }

    #[test]
    fn merge_matches_pooled_recorder_at_bucket_resolution_on_arbitrary_samples() {
        // Arbitrary (non-aligned) samples: the merged percentile must
        // land in the same log₂ bucket as the pooled recorder's — the
        // invariant that makes cross-shard p99s comparable.
        let mut pooled_samples = Vec::new();
        let mut parts = Vec::new();
        let mut x = 12345u64;
        for shard in 0..7u64 {
            let mut samples = Vec::new();
            for i in 0..(40 + shard * 17) {
                // Cheap LCG spread over ~4 decades.
                x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
                samples.push(1 + (x >> 33) % 50_000);
            }
            pooled_samples.extend_from_slice(&samples);
            parts.push(LatencySummary::from_samples(&samples));
        }
        let pooled = LatencySummary::from_samples(&pooled_samples);
        let merged = LatencySummary::merge(&parts);
        assert_eq!(merged.count, pooled.count);
        assert_eq!(merged.min, pooled.min);
        assert_eq!(merged.max, pooled.max);
        assert_eq!(merged.mean, pooled.mean, "sum-carrying mean is exact");
        for (m, p, name) in [
            (merged.p50, pooled.p50, "p50"),
            (merged.p95, pooled.p95, "p95"),
            (merged.p99, pooled.p99, "p99"),
            (merged.p999, pooled.p999, "p999"),
        ] {
            assert_eq!(
                LatencyHistogram::bucket_of(m),
                LatencyHistogram::bucket_of(p),
                "{name}: merged {m} vs pooled {p} land in different buckets"
            );
            assert!(m <= p, "the bucket lower bound never exceeds the sample");
        }
    }

    #[test]
    fn merge_skips_empty_summaries() {
        let a = LatencySummary::from_samples(&[8, 16, 32]);
        let merged = LatencySummary::merge([&LatencySummary::default(), &a, &a]);
        assert_eq!(merged.count, 6);
        assert_eq!(merged.min, 8);
        assert_eq!(merged.max, 32);
        assert_eq!(
            LatencySummary::merge(std::iter::empty()),
            LatencySummary::default()
        );
    }

    #[test]
    fn to_json_schema_is_stable() {
        let s = LatencySummary::from_samples(&[10, 20, 30]);
        let j = s.to_json();
        assert_eq!(j.get("count").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(j.get("min_us").and_then(JsonValue::as_u64), Some(10));
        assert_eq!(j.get("max_us").and_then(JsonValue::as_u64), Some(30));
        assert_eq!(j.get("p50_us").and_then(JsonValue::as_u64), Some(20));
        // Round-trips through the parser.
        let back = JsonValue::parse(&j.render()).unwrap();
        assert_eq!(back.get("mean_us").and_then(JsonValue::as_u64), Some(20));
    }
}
