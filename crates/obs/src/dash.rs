//! A dependency-free terminal dashboard over [`ClusterMetrics`]: raw
//! ANSI, ratatui-style panel layout, no TUI crate.
//!
//! [`render`] produces one complete frame as a string — per-node panels
//! (health, taint, quorum, op counters, latency, sparkline), an optional
//! per-shard service panel, and the scrolling fault/recovery feed. The
//! caller decides how to present it: print once (`--headless --once`),
//! or repaint in place with [`HOME`] + [`DashStyle::live`] line clearing
//! for a live view.

use crate::metrics::{ClusterMetrics, NodeHealth, ShardGauge};
use std::fmt::Write as _;

/// ANSI: clear the whole screen (print once before a live session).
pub const CLEAR: &str = "\x1b[2J";
/// ANSI: move the cursor home (print before each live repaint).
pub const HOME: &str = "\x1b[H";

/// The eight-level block characters a sparkline is drawn with.
const SPARK_GLYPHS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Inner width of every panel (between the `│` borders).
const WIDTH: usize = 76;

/// Rendering options.
#[derive(Clone, Debug)]
pub struct DashStyle {
    /// Emit ANSI colors.
    pub color: bool,
    /// Emit an erase-to-end-of-line after every row (live repaint mode:
    /// a shorter new frame never leaves stale tails on screen).
    pub live: bool,
    /// Header label (e.g. the backend name or scenario).
    pub title: String,
}

impl Default for DashStyle {
    fn default() -> Self {
        DashStyle {
            color: true,
            live: false,
            title: String::new(),
        }
    }
}

impl DashStyle {
    /// No colors, no ANSI clears — the headless/CI preset; frames are
    /// plain text safe to snapshot and grep.
    pub fn headless() -> DashStyle {
        DashStyle {
            color: false,
            live: false,
            title: String::new(),
        }
    }
}

/// Renders `values` (each a latency, µs) as one sparkline string, scaled
/// to the series' own maximum. All-zero input renders as spaces.
pub fn sparkline(values: &[u64]) -> String {
    let max = values.iter().copied().max().unwrap_or(0);
    values
        .iter()
        .map(|&v| {
            if max == 0 || v == 0 {
                SPARK_GLYPHS[0]
            } else {
                // Nonzero samples always get at least the lowest bar.
                let level = 1 + (v.saturating_mul(7) / max.max(1)) as usize;
                SPARK_GLYPHS[level.min(8)]
            }
        })
        .collect()
}

/// A human-readable model-time quantity (µs → ms → s).
pub fn fmt_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

/// Display width of `s`: counts chars, not bytes (the frame is full of
/// box-drawing and block glyphs), treating the sparkline glyphs and
/// box-drawing marks as width 1, which holds in every terminal font.
/// ANSI escape sequences count zero.
fn visible_width(s: &str) -> usize {
    let mut w = 0usize;
    let mut in_escape = false;
    for c in s.chars() {
        if in_escape {
            if c.is_ascii_alphabetic() {
                in_escape = false;
            }
        } else if c == '\x1b' {
            in_escape = true;
        } else {
            w += 1;
        }
    }
    w
}

struct Frame {
    out: String,
    style: DashStyle,
}

impl Frame {
    fn eol(&mut self) {
        if self.style.live {
            self.out.push_str("\x1b[K");
        }
        self.out.push('\n');
    }

    fn top(&mut self, label: &str) {
        let tag = if label.is_empty() {
            String::new()
        } else {
            format!(" {label} ")
        };
        // 1 leading rule char after ┌, so the body spans WIDTH columns.
        let fill = WIDTH.saturating_sub(1 + visible_width(&tag));
        let _ = write!(self.out, "┌─{tag}{}┐", "─".repeat(fill));
        self.eol();
    }

    fn mid(&mut self, label: &str) {
        let tag = if label.is_empty() {
            String::new()
        } else {
            format!(" {label} ")
        };
        let fill = WIDTH.saturating_sub(1 + visible_width(&tag));
        let _ = write!(self.out, "├─{tag}{}┤", "─".repeat(fill));
        self.eol();
    }

    fn row(&mut self, content: &str) {
        let pad = WIDTH.saturating_sub(visible_width(content));
        let _ = write!(self.out, "│{content}{}│", " ".repeat(pad));
        self.eol();
    }

    fn bottom(&mut self) {
        let _ = write!(self.out, "└{}┘", "─".repeat(WIDTH));
        self.eol();
    }

    fn paint(&self, code: &str, text: &str) -> String {
        if self.style.color {
            format!("\x1b[{code}m{text}\x1b[0m")
        } else {
            text.to_string()
        }
    }
}

/// Renders one complete dashboard frame.
pub fn render(m: &ClusterMetrics, style: &DashStyle) -> String {
    let mut f = Frame {
        out: String::new(),
        style: style.clone(),
    };

    // ── header ──
    let title = if style.title.is_empty() {
        "sss live ops".to_string()
    } else {
        format!("sss live ops · {}", style.title)
    };
    f.top(&title);
    let part = if m.partitioned() {
        f.paint("31", "PARTITIONED")
    } else {
        f.paint("32", "connected")
    };
    let taint = m.tainted_count();
    let taint_str = if taint > 0 {
        f.paint("33", &format!("{taint} tainted"))
    } else {
        "0 tainted".to_string()
    };
    f.row(&format!(
        " t={} · {} nodes · {} cycles · {} · {} · folded {} (shed {})",
        fmt_us(m.now()),
        m.n(),
        m.cycles(),
        part,
        taint_str,
        m.records(),
        m.shed(),
    ));

    // ── per-node panels ──
    f.mid("nodes");
    for i in 0..m.n() {
        let nm = m.node(i);
        let health = match (nm.health, nm.byzantine_suspected, nm.tainted) {
            (NodeHealth::Crashed, _, _) => f.paint("31;1", "DOWN "),
            (NodeHealth::Up, true, _) => f.paint("35;1", "BYZ  "),
            (NodeHealth::Up, false, true) => f.paint("33;1", "TAINT"),
            (NodeHealth::Up, false, false) => f.paint("32", "up   "),
        };
        let reach = m.reachable(i);
        let quorum = if m.quorum_ok(i) {
            format!("{reach}/{} ✓", m.n())
        } else {
            f.paint("31", &format!("{reach}/{} ✗", m.n()))
        };
        let lat = nm.latency();
        f.row(&format!(
            " p{i:<2} {health} q {quorum:<9} ops {}/{} ({} infl) stab {} drop {}",
            nm.invoked,
            nm.completed,
            nm.inflight(),
            nm.stabilizations,
            nm.drops_total(),
        ));
        f.row(&format!(
            "      p50 {:>7} p99 {:>7}  {}",
            fmt_us(lat.p50),
            fmt_us(lat.p99),
            sparkline(&nm.sparkline()),
        ));
    }

    // ── shard panel (only when a service pushes gauges) ──
    if !m.shards().is_empty() {
        f.mid("shards");
        for s in m.shards() {
            f.row(&shard_row(&f, s));
        }
    }

    // ── event feed ──
    f.mid("events");
    let feed: Vec<_> = m.feed().collect();
    if feed.is_empty() {
        f.row(" (no faults yet)");
    }
    // Newest last, like a log tail; the feed itself is bounded.
    for e in feed.iter().rev().take(10).rev() {
        f.row(&format!(" t={:>9} {}", fmt_us(e.at), e.text));
    }
    f.bottom();
    f.out
}

fn shard_row(f: &Frame, s: &ShardGauge) -> String {
    let state = if s.down {
        f.paint("31", "down")
    } else {
        f.paint("32", "ok  ")
    };
    format!(
        " s{:<3} {state} depth {:>4} collapse {:>5.1}x acc {} done {} rej {} p99 {}",
        s.shard,
        s.queue_depth,
        s.collapse_factor(),
        s.accepted,
        s.completed,
        s.overloaded + s.unavailable,
        fmt_us(s.latency.p99),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{FaultKind, TraceEvent, TraceRecord};
    use sss_types::NodeId;

    fn demo_metrics() -> ClusterMetrics {
        let mut m = ClusterMetrics::new(3);
        m.fold(&TraceRecord {
            seq: 0,
            at: 500,
            event: TraceEvent::Fault {
                kind: FaultKind::Crash,
                node: Some(NodeId(2)),
                peer: None,
            },
        });
        m.fold(&TraceRecord {
            seq: 1,
            at: 900,
            event: TraceEvent::Stabilized { node: NodeId(1) },
        });
        m
    }

    #[test]
    fn headless_frame_is_plain_and_shows_the_story() {
        let m = demo_metrics();
        let frame = render(&m, &DashStyle::headless());
        assert!(!frame.contains('\x1b'), "headless means no ANSI");
        assert!(frame.contains("DOWN"), "crashed node is visible");
        assert!(frame.contains("crash p2"), "feed carries the fault");
        assert!(frame.contains("stabilized p1"));
        assert!(frame.contains("3 nodes"));
        // Panel borders are intact and aligned.
        for line in frame.lines() {
            assert!(
                line.starts_with('┌')
                    || line.starts_with('│')
                    || line.starts_with('├')
                    || line.starts_with('└'),
                "stray line {line:?}"
            );
        }
        let widths: Vec<usize> = frame.lines().map(|l| l.chars().count()).collect();
        assert!(
            widths.iter().all(|&w| w == widths[0]),
            "ragged frame: {widths:?}"
        );
    }

    #[test]
    fn live_color_frame_clears_line_tails() {
        let m = demo_metrics();
        let style = DashStyle {
            color: true,
            live: true,
            title: "threads".into(),
        };
        let frame = render(&m, &style);
        assert!(frame.contains("\x1b[K"), "live mode erases stale tails");
        assert!(frame.contains("threads"));
        assert!(frame.contains("\x1b[31;1mDOWN"));
    }

    #[test]
    fn sparkline_scales_to_its_max() {
        assert_eq!(sparkline(&[0, 0, 0]), "   ");
        let s = sparkline(&[1, 50, 100]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 3);
        assert_eq!(chars[2], '█', "max sample is a full block");
        assert_ne!(chars[0], ' ', "nonzero sample gets at least ▁");
        assert!(chars[0] < chars[1] && chars[1] < chars[2]);
    }

    #[test]
    fn fmt_us_picks_sane_units() {
        assert_eq!(fmt_us(0), "0µs");
        assert_eq!(fmt_us(999), "999µs");
        assert_eq!(fmt_us(1_500), "1.5ms");
        assert_eq!(fmt_us(2_500_000), "2.50s");
    }

    #[test]
    fn shard_panel_renders_when_present() {
        let mut m = demo_metrics();
        m.set_shards(vec![ShardGauge {
            shard: 0,
            queue_depth: 12,
            accepted: 100,
            completed: 88,
            absorbed: 88,
            protocol_ops: 22,
            ..ShardGauge::default()
        }]);
        let frame = render(&m, &DashStyle::headless());
        assert!(frame.contains("shards"));
        assert!(frame.contains("depth   12"));
        assert!(frame.contains("collapse   4.0x"));
    }
}
