//! A minimal JSON *value* model and recursive-descent parser.
//!
//! The trace plane writes JSON ([`crate::JsonlSink`],
//! [`crate::ChromeTraceSink`]) by hand; this module adds the read side
//! so other crates can round-trip small JSON documents — fault-plan
//! fixtures, shrunk chaos reproducers — without an external
//! serialization dependency. It is deliberately small: UTF-8 input,
//! `\uXXXX` escapes limited to the Basic Multilingual Plane, and
//! numbers kept exact for unsigned 64-bit integers (seeds!) with an
//! `f64` fallback for everything else.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64`, kept exact (plan seeds
    /// use the full 64-bit range, beyond `f64`'s 53-bit mantissa).
    UInt(u64),
    /// Any other number (negative, fractional, or exponent form).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, as insertion-ordered key/value pairs.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses one JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// A human-readable message with the byte offset of the problem.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Looks up `key` in an object (`None` for missing keys or
    /// non-objects).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an exact `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// The value as an `f64` (integers convert losslessly up to 2⁵³).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::UInt(u) => Some(*u as f64),
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a borrowed string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value back to compact JSON text, the inverse of
    /// [`JsonValue::parse`]. Lets a reader hand an embedded subtree
    /// (say, a fault plan inside a chaos fixture) to another parser
    /// without knowing its schema.
    pub fn render(&self) -> String {
        match self {
            JsonValue::Null => "null".into(),
            JsonValue::Bool(b) => b.to_string(),
            JsonValue::UInt(u) => u.to_string(),
            JsonValue::Num(x) => {
                // `f64::to_string` never produces exponent form for the
                // magnitudes we store, and round-trips exactly.
                x.to_string()
            }
            JsonValue::Str(s) => format!("\"{}\"", escape_json(s)),
            JsonValue::Arr(items) => {
                let inner: Vec<String> = items.iter().map(JsonValue::render).collect();
                format!("[{}]", inner.join(", "))
            }
            JsonValue::Obj(pairs) => {
                let inner: Vec<String> = pairs
                    .iter()
                    .map(|(k, v)| format!("\"{}\": {}", escape_json(k), v.render()))
                    .collect();
                format!("{{{}}}", inner.join(", "))
            }
        }
    }
}

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included) — the inverse of the parser's unescaping, shared so
/// writers round-trip.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", JsonValue::Null),
            Some(b't') => self.eat_lit("true", JsonValue::Bool(true)),
            Some(b'f') => self.eat_lit("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or(format!("surrogate \\u escape at byte {}", self.pos))?,
                            );
                        }
                        other => {
                            return Err(format!("unknown escape '\\{}'", other as char));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged; the input is a valid &str).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        // Unsigned integers stay exact (u64 covers 64-bit seeds; f64
        // would silently round above 2⁵³).
        if !text.contains(['.', 'e', 'E', '-']) {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v =
            JsonValue::parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny"}, "d": true, "e": null}"#)
                .unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-3.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("e"), Some(&JsonValue::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn u64_seeds_stay_exact() {
        let big = u64::MAX - 1;
        let v = JsonValue::parse(&format!("{{\"seed\": {big}}}")).unwrap();
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(big));
    }

    #[test]
    fn rejects_garbage() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("{\"a\" 1}").is_err());
        assert!(JsonValue::parse("12 34").is_err());
        assert!(JsonValue::parse("nul").is_err());
    }

    #[test]
    fn render_round_trips_through_parser() {
        let doc = r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny"}, "d": true, "e": null}"#;
        let v = JsonValue::parse(doc).unwrap();
        let again = JsonValue::parse(&v.render()).unwrap();
        assert_eq!(v, again);
        // Large seeds stay exact through a render trip.
        let seed = JsonValue::UInt(u64::MAX - 1);
        assert_eq!(JsonValue::parse(&seed.render()).unwrap(), seed);
    }

    #[test]
    fn escape_round_trips_through_parser() {
        let original = "a\"b\\c\nd\te\u{1}f — ünïcode";
        let doc = format!("\"{}\"", escape_json(original));
        assert_eq!(JsonValue::parse(&doc).unwrap().as_str(), Some(original));
    }
}
