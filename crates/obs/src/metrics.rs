//! The live ops-plane aggregator: folds the [`TraceEvent`] stream into
//! rolling per-node state a dashboard or HTTP endpoint can serve.
//!
//! The paper's self-stabilization guarantee is a *live* property —
//! convergence from arbitrary state — so the operationally interesting
//! signal is the transition into a legal execution as it happens, not
//! the post-mortem artifact E15/E16 produce. [`ClusterMetrics::fold`]
//! consumes one [`TraceRecord`] at a time (typically drained from a
//! [`crate::Subscription`]) and maintains:
//!
//! * per-node **health** (up/crashed) and **taint** status (corrupted,
//!   not yet re-stabilized), with corruption/stabilization counters —
//!   the live view of Thm 1/2's recovery;
//! * per-node **quorum reachability**, reconstructed observationally
//!   from the fault stream (crashes, explicit link cuts, and link-down
//!   drop evidence while a partition is active);
//! * per-node **op latency**: a rolling recent-sample summary plus
//!   time-bucketed sparkline windows, both reported as
//!   [`LatencySummary`] — the same type every offline artifact uses;
//! * **drop and fault counters** by cause, and a bounded scrolling
//!   **event feed** of faults, recoveries, and stabilization probes;
//! * optional per-shard gauges ([`ShardGauge`]) pushed in from the
//!   sharded service layer.
//!
//! Folding is a pure function of the record stream (plus the configured
//! window width), so two aggregators fed the same records agree exactly
//! — the property the golden fixture test pins.

use crate::event::{DropCause, FaultKind, TraceEvent, TraceRecord, TraceTime};
use crate::jsonv::JsonValue;
use crate::sink::SubscriberSink;
use crate::stats::LatencySummary;
use crate::tracer::{EventMask, Tracer};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Sparkline resolution: how many trailing time windows each node keeps.
pub const SPARK_WINDOWS: usize = 32;

/// Default sparkline window width in model microseconds (100 ms).
pub const DEFAULT_WINDOW_US: u64 = 100_000;

/// Recent-latency ring depth per node (the "current" summary's horizon).
const RECENT_SAMPLES: usize = 1024;

/// Per-window sample cap (bounds memory on hot nodes; the percentile
/// error from capping is irrelevant at sparkline resolution).
const WINDOW_SAMPLES: usize = 512;

/// In-flight op table cap per node: if completes are shed faster than
/// this, the table is cleared rather than growing without bound.
const INFLIGHT_CAP: usize = 4096;

/// Default bound on the scrolling fault/recovery event feed.
const FEED_CAP: usize = 64;

/// A node's liveness as reconstructed from the fault stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeHealth {
    /// Taking steps (the initial assumption — nodes start live).
    Up,
    /// Crashed by the fault plane and not yet resumed or restarted.
    Crashed,
}

impl NodeHealth {
    /// A short lowercase label for serialization.
    pub fn label(self) -> &'static str {
        match self {
            NodeHealth::Up => "up",
            NodeHealth::Crashed => "crashed",
        }
    }
}

/// One time-bucketed latency window (sparkline cell).
#[derive(Clone, Debug)]
struct SparkWindow {
    /// Which window (at / window_us) this cell covers.
    index: u64,
    /// Completed-op latency samples in the window (capped).
    samples: Vec<u64>,
}

/// Rolling state for one node.
#[derive(Clone, Debug)]
pub struct NodeMetrics {
    /// Liveness.
    pub health: NodeHealth,
    /// Corrupted and not yet re-stabilized (the window Thm 1/2 bound).
    pub tainted: bool,
    /// Corruption injections seen.
    pub corruptions: u64,
    /// `Stabilized` probes seen (each closes one taint window).
    pub stabilizations: u64,
    /// Detectable restarts seen.
    pub restarts: u64,
    /// Operations invoked at this node.
    pub invoked: u64,
    /// Operations completed at this node.
    pub completed: u64,
    /// Operations aborted (global reset) at this node.
    pub aborted: u64,
    /// The fault plane currently rewrites this node's outgoing messages
    /// (a `Byzantine` injection not yet cleared by `Honest`).
    pub byzantine_suspected: bool,
    /// The node's current bounded-counter epoch (0 for protocols without
    /// an epoch envelope).
    pub epoch: u64,
    /// Messages this node discarded for carrying a stale epoch tag.
    pub stale_epoch_dropped: u64,
    /// Messages this node sent (0 when `Send` is masked out).
    pub sent: u64,
    /// Messages delivered to this node (0 when `Deliver` is masked out).
    pub delivered: u64,
    /// Drops by [`DropCause`]: `link_down`, `loss`, `capacity`,
    /// `crashed` (sender-scoped, like the flight recorder).
    pub drops: [u64; 4],
    /// Invoke timestamps of ops still in flight, by op id.
    inflight: HashMap<u64, TraceTime>,
    /// Most recent completed-op latencies (bounded ring).
    recent: VecDeque<u64>,
    /// Trailing sparkline windows, oldest first.
    windows: VecDeque<SparkWindow>,
}

impl NodeMetrics {
    fn new() -> NodeMetrics {
        NodeMetrics {
            health: NodeHealth::Up,
            tainted: false,
            corruptions: 0,
            stabilizations: 0,
            restarts: 0,
            invoked: 0,
            completed: 0,
            aborted: 0,
            byzantine_suspected: false,
            epoch: 0,
            stale_epoch_dropped: 0,
            sent: 0,
            delivered: 0,
            drops: [0; 4],
            inflight: HashMap::new(),
            recent: VecDeque::new(),
            windows: VecDeque::new(),
        }
    }

    fn record_latency(&mut self, at: TraceTime, sample: u64, window_us: u64) {
        if self.recent.len() == RECENT_SAMPLES {
            self.recent.pop_front();
        }
        self.recent.push_back(sample);
        let index = at / window_us.max(1);
        match self.windows.back_mut() {
            Some(w) if w.index == index => {
                if w.samples.len() < WINDOW_SAMPLES {
                    w.samples.push(sample);
                }
            }
            _ => {
                if self.windows.len() == SPARK_WINDOWS {
                    self.windows.pop_front();
                }
                self.windows.push_back(SparkWindow {
                    index,
                    samples: vec![sample],
                });
            }
        }
    }

    /// Summary of the most recent completed-op latencies (bounded ring).
    pub fn latency(&self) -> LatencySummary {
        let samples: Vec<u64> = self.recent.iter().copied().collect();
        LatencySummary::from_samples(&samples)
    }

    /// Operations currently in flight (invoked, not yet completed).
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }

    /// Total drops, all causes.
    pub fn drops_total(&self) -> u64 {
        self.drops.iter().sum()
    }

    /// The p50 latency of each of the last [`SPARK_WINDOWS`] time
    /// windows, oldest first, `0` for windows with no completions — the
    /// series a dashboard renders as a sparkline. The newest window
    /// always occupies the last cell, and gaps (windows with no
    /// completions) stay zero, so stalls are visible as holes.
    pub fn sparkline(&self) -> Vec<u64> {
        let mut out = vec![0u64; SPARK_WINDOWS];
        let Some(last) = self.windows.back() else {
            return out;
        };
        let newest = last.index;
        for w in &self.windows {
            let age = (newest - w.index) as usize;
            if age >= SPARK_WINDOWS {
                continue;
            }
            let slot = SPARK_WINDOWS - 1 - age;
            out[slot] = LatencySummary::from_samples(&w.samples).p50;
        }
        out
    }
}

/// One entry of the scrolling fault/recovery event feed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FeedEntry {
    /// Model-microsecond timestamp.
    pub at: TraceTime,
    /// Human-readable one-liner (`crash p4`, `stabilized p2`, …).
    pub text: String,
}

/// Live gauges for one service shard, pushed into the aggregator by the
/// sharded service layer (`sss-service` converts its `ShardStats`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ShardGauge {
    /// Shard index.
    pub shard: usize,
    /// Requests waiting in the admission queue right now.
    pub queue_depth: u64,
    /// Requests admitted since start.
    pub accepted: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests failed.
    pub failed: u64,
    /// Requests rejected with `Overloaded`.
    pub overloaded: u64,
    /// Requests rejected with `Unavailable`.
    pub unavailable: u64,
    /// Requests absorbed into group commits.
    pub absorbed: u64,
    /// Protocol operations actually issued by group commits.
    pub protocol_ops: u64,
    /// The shard's failure detector currently reports it down.
    pub down: bool,
    /// Completed-request latency summary.
    pub latency: LatencySummary,
}

impl ShardGauge {
    /// Group-commit collapse: requests absorbed per protocol operation
    /// issued (`1.0` before any flush).
    pub fn collapse_factor(&self) -> f64 {
        if self.protocol_ops == 0 {
            1.0
        } else {
            self.absorbed as f64 / self.protocol_ops as f64
        }
    }

    /// The gauge as a JSON object (the `/shards` endpoint's schema).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("shard".into(), JsonValue::UInt(self.shard as u64)),
            ("queue_depth".into(), JsonValue::UInt(self.queue_depth)),
            ("accepted".into(), JsonValue::UInt(self.accepted)),
            ("completed".into(), JsonValue::UInt(self.completed)),
            ("failed".into(), JsonValue::UInt(self.failed)),
            ("overloaded".into(), JsonValue::UInt(self.overloaded)),
            ("unavailable".into(), JsonValue::UInt(self.unavailable)),
            ("absorbed".into(), JsonValue::UInt(self.absorbed)),
            ("protocol_ops".into(), JsonValue::UInt(self.protocol_ops)),
            (
                "collapse_factor".into(),
                JsonValue::Num((self.collapse_factor() * 100.0).round() / 100.0),
            ),
            ("down".into(), JsonValue::Bool(self.down)),
            ("latency".into(), self.latency.to_json()),
        ])
    }
}

/// The rolling cluster state the ops plane serves.
///
/// Fold records in with [`ClusterMetrics::fold`]; read per-node state,
/// quorum reachability, and render views back out. Folding is
/// deterministic in the record stream.
#[derive(Clone, Debug)]
pub struct ClusterMetrics {
    n: usize,
    now: TraceTime,
    records: u64,
    shed: u64,
    cycles: u64,
    partitioned: bool,
    /// Directed links currently believed cut: explicit `LinkDown` faults
    /// plus link-down drop evidence observed while a partition is
    /// active. Cleared by `Heal`. Sorted for deterministic rendering.
    cuts: Vec<(usize, usize)>,
    nodes: Vec<NodeMetrics>,
    feed: VecDeque<FeedEntry>,
    window_us: u64,
    shards: Vec<ShardGauge>,
}

impl ClusterMetrics {
    /// An empty aggregator for `n` nodes with the default sparkline
    /// window width ([`DEFAULT_WINDOW_US`]).
    pub fn new(n: usize) -> ClusterMetrics {
        ClusterMetrics::with_window(n, DEFAULT_WINDOW_US)
    }

    /// An empty aggregator with an explicit sparkline window width in
    /// model microseconds.
    pub fn with_window(n: usize, window_us: u64) -> ClusterMetrics {
        ClusterMetrics {
            n,
            now: 0,
            records: 0,
            shed: 0,
            cycles: 0,
            partitioned: false,
            cuts: Vec::new(),
            nodes: (0..n).map(|_| NodeMetrics::new()).collect(),
            feed: VecDeque::new(),
            window_us: window_us.max(1),
            shards: Vec::new(),
        }
    }

    /// Cluster size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The newest timestamp folded so far (model microseconds).
    pub fn now(&self) -> TraceTime {
        self.now
    }

    /// Records folded so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Records the subscription shed (see [`ClusterMetrics::note_shed`]).
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Asynchronous cycles completed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Whether a group partition is currently active (between
    /// `Partition` and `Heal` fault events).
    pub fn partitioned(&self) -> bool {
        self.partitioned
    }

    /// Per-node state, indexed by node id.
    pub fn node(&self, i: usize) -> &NodeMetrics {
        &self.nodes[i]
    }

    /// All nodes, in id order.
    pub fn nodes(&self) -> &[NodeMetrics] {
        &self.nodes
    }

    /// The scrolling fault/recovery feed, oldest first (bounded).
    pub fn feed(&self) -> impl Iterator<Item = &FeedEntry> {
        self.feed.iter()
    }

    /// Latest shard gauges (empty unless a service pushes them).
    pub fn shards(&self) -> &[ShardGauge] {
        &self.shards
    }

    /// Replaces the shard gauges with a fresh snapshot from the service.
    pub fn set_shards(&mut self, shards: Vec<ShardGauge>) {
        self.shards = shards;
    }

    /// Updates the count of records the live subscription shed (an
    /// absolute counter, from [`crate::Subscription::shed`]).
    pub fn note_shed(&mut self, shed: u64) {
        self.shed = self.shed.max(shed);
    }

    fn push_feed(&mut self, at: TraceTime, text: String) {
        if self.feed.len() == FEED_CAP {
            self.feed.pop_front();
        }
        self.feed.push_back(FeedEntry { at, text });
    }

    fn cut(&mut self, from: usize, to: usize) {
        if let Err(slot) = self.cuts.binary_search(&(from, to)) {
            self.cuts.insert(slot, (from, to));
        }
    }

    fn uncut(&mut self, from: usize, to: usize) {
        if let Ok(slot) = self.cuts.binary_search(&(from, to)) {
            self.cuts.remove(slot);
        }
    }

    /// Folds one trace record into the rolling state.
    pub fn fold(&mut self, rec: &TraceRecord) {
        self.now = self.now.max(rec.at);
        self.records += 1;
        let at = rec.at;
        match &rec.event {
            TraceEvent::OpInvoke { node, id, .. } => {
                if let Some(nm) = self.nodes.get_mut(node.index()) {
                    nm.invoked += 1;
                    if nm.inflight.len() >= INFLIGHT_CAP {
                        // Completes were shed faster than invokes; reset
                        // rather than leak.
                        nm.inflight.clear();
                    }
                    nm.inflight.insert(id.0, at);
                }
            }
            TraceEvent::OpComplete { node, id, .. } => {
                let window_us = self.window_us;
                if let Some(nm) = self.nodes.get_mut(node.index()) {
                    nm.completed += 1;
                    if let Some(t0) = nm.inflight.remove(&id.0) {
                        nm.record_latency(at, at.saturating_sub(t0), window_us);
                    }
                }
            }
            TraceEvent::OpAbort { node, id } => {
                if let Some(nm) = self.nodes.get_mut(node.index()) {
                    nm.aborted += 1;
                    nm.inflight.remove(&id.0);
                }
                self.push_feed(at, format!("abort op at p{}", node.index()));
            }
            TraceEvent::Send { from, .. } => {
                if let Some(nm) = self.nodes.get_mut(from.index()) {
                    nm.sent += 1;
                }
            }
            TraceEvent::Deliver { to, .. } => {
                if let Some(nm) = self.nodes.get_mut(to.index()) {
                    nm.delivered += 1;
                }
            }
            TraceEvent::Drop {
                from, to, cause, ..
            } => {
                let idx = match cause {
                    DropCause::LinkDown => 0,
                    DropCause::Loss => 1,
                    DropCause::Capacity => 2,
                    DropCause::Crashed => 3,
                };
                if let Some(nm) = self.nodes.get_mut(from.index()) {
                    nm.drops[idx] += 1;
                }
                // A partition's groups aren't in the trace schema; while
                // one is active, link-down drops are the observable
                // evidence of which directed links it cut.
                if self.partitioned && *cause == DropCause::LinkDown {
                    self.cut(from.index(), to.index());
                }
            }
            TraceEvent::Fault { kind, node, peer } => {
                let loc = node.map(|p| format!("p{}", p.index()));
                match kind {
                    FaultKind::Crash => {
                        if let Some(nm) = node.and_then(|p| self.nodes.get_mut(p.index())) {
                            nm.health = NodeHealth::Crashed;
                        }
                    }
                    FaultKind::Resume => {
                        if let Some(nm) = node.and_then(|p| self.nodes.get_mut(p.index())) {
                            nm.health = NodeHealth::Up;
                        }
                    }
                    FaultKind::Restart => {
                        if let Some(nm) = node.and_then(|p| self.nodes.get_mut(p.index())) {
                            nm.health = NodeHealth::Up;
                            // A detectable restart re-initializes state:
                            // any pre-restart taint is gone by definition.
                            nm.tainted = false;
                            nm.restarts += 1;
                        }
                    }
                    FaultKind::Corrupt => {
                        if let Some(nm) = node.and_then(|p| self.nodes.get_mut(p.index())) {
                            nm.tainted = true;
                            nm.corruptions += 1;
                        }
                    }
                    FaultKind::Partition => self.partitioned = true,
                    FaultKind::Heal => {
                        self.partitioned = false;
                        self.cuts.clear();
                    }
                    FaultKind::LinkDown => {
                        if let (Some(f), Some(t)) = (node, peer) {
                            self.cut(f.index(), t.index());
                        }
                    }
                    FaultKind::LinkUp => {
                        if let (Some(f), Some(t)) = (node, peer) {
                            self.uncut(f.index(), t.index());
                        }
                    }
                    FaultKind::Byzantine => {
                        if let Some(nm) = node.and_then(|p| self.nodes.get_mut(p.index())) {
                            nm.byzantine_suspected = true;
                        }
                    }
                    FaultKind::Honest => {
                        if let Some(nm) = node.and_then(|p| self.nodes.get_mut(p.index())) {
                            nm.byzantine_suspected = false;
                        }
                    }
                }
                let text = match (loc, peer) {
                    (Some(l), Some(p)) => format!("{} {l}->p{}", kind.label(), p.index()),
                    (Some(l), None) => format!("{} {l}", kind.label()),
                    (None, _) => kind.label().to_string(),
                };
                self.push_feed(at, text);
            }
            TraceEvent::CycleEnd { index } => {
                self.cycles = self.cycles.max(index + 1);
            }
            TraceEvent::Stabilized { node } => {
                if let Some(nm) = self.nodes.get_mut(node.index()) {
                    nm.tainted = false;
                    nm.stabilizations += 1;
                }
                self.push_feed(at, format!("stabilized p{}", node.index()));
            }
            TraceEvent::EpochChange {
                node,
                epoch,
                stale_dropped,
            } => {
                if let Some(nm) = self.nodes.get_mut(node.index()) {
                    let advanced = *epoch > nm.epoch;
                    nm.epoch = nm.epoch.max(*epoch);
                    nm.stale_epoch_dropped = nm.stale_epoch_dropped.max(*stale_dropped);
                    if advanced {
                        self.push_feed(at, format!("epoch {epoch} p{}", node.index()));
                    }
                }
            }
            TraceEvent::BatchDrain { .. } => {}
        }
    }

    /// Folds a batch of records in order.
    pub fn fold_all<'a>(&mut self, recs: impl IntoIterator<Item = &'a TraceRecord>) {
        for rec in recs {
            self.fold(rec);
        }
    }

    /// Quorum size required for progress (a majority).
    pub fn quorum_required(&self) -> usize {
        self.n / 2 + 1
    }

    /// How many nodes `i` can currently reach (itself included):
    /// non-crashed peers whose directed link from `i` is not believed
    /// cut. `0` if `i` is itself crashed.
    pub fn reachable(&self, i: usize) -> usize {
        if self.nodes[i].health == NodeHealth::Crashed {
            return 0;
        }
        1 + (0..self.n)
            .filter(|&j| {
                j != i
                    && self.nodes[j].health == NodeHealth::Up
                    && self.cuts.binary_search(&(i, j)).is_err()
            })
            .count()
    }

    /// Whether `i` currently reaches a majority.
    pub fn quorum_ok(&self, i: usize) -> bool {
        self.reachable(i) >= self.quorum_required()
    }

    /// Nodes currently tainted (corrupted, not yet stabilized).
    pub fn tainted_count(&self) -> usize {
        self.nodes.iter().filter(|nm| nm.tainted).count()
    }

    /// The sparkline window width, model microseconds.
    pub fn window_us(&self) -> u64 {
        self.window_us
    }

    /// The `/node_info` document: the whole aggregator state as JSON.
    pub fn to_node_info_json(&self) -> JsonValue {
        let nodes: Vec<JsonValue> = (0..self.n)
            .map(|i| {
                let nm = &self.nodes[i];
                JsonValue::Obj(vec![
                    ("node".into(), JsonValue::UInt(i as u64)),
                    (
                        "health".into(),
                        JsonValue::Str(nm.health.label().to_string()),
                    ),
                    ("tainted".into(), JsonValue::Bool(nm.tainted)),
                    ("byzantine".into(), JsonValue::Bool(nm.byzantine_suspected)),
                    ("epoch".into(), JsonValue::UInt(nm.epoch)),
                    (
                        "stale_epoch_dropped".into(),
                        JsonValue::UInt(nm.stale_epoch_dropped),
                    ),
                    ("corruptions".into(), JsonValue::UInt(nm.corruptions)),
                    ("stabilizations".into(), JsonValue::UInt(nm.stabilizations)),
                    ("restarts".into(), JsonValue::UInt(nm.restarts)),
                    (
                        "quorum".into(),
                        JsonValue::Obj(vec![
                            (
                                "reachable".into(),
                                JsonValue::UInt(self.reachable(i) as u64),
                            ),
                            (
                                "required".into(),
                                JsonValue::UInt(self.quorum_required() as u64),
                            ),
                            ("ok".into(), JsonValue::Bool(self.quorum_ok(i))),
                        ]),
                    ),
                    (
                        "ops".into(),
                        JsonValue::Obj(vec![
                            ("invoked".into(), JsonValue::UInt(nm.invoked)),
                            ("completed".into(), JsonValue::UInt(nm.completed)),
                            ("aborted".into(), JsonValue::UInt(nm.aborted)),
                            ("inflight".into(), JsonValue::UInt(nm.inflight() as u64)),
                        ]),
                    ),
                    (
                        "drops".into(),
                        JsonValue::Obj(vec![
                            ("link_down".into(), JsonValue::UInt(nm.drops[0])),
                            ("loss".into(), JsonValue::UInt(nm.drops[1])),
                            ("capacity".into(), JsonValue::UInt(nm.drops[2])),
                            ("crashed".into(), JsonValue::UInt(nm.drops[3])),
                        ]),
                    ),
                    ("latency".into(), nm.latency().to_json()),
                    (
                        "sparkline_p50_us".into(),
                        JsonValue::Arr(nm.sparkline().into_iter().map(JsonValue::UInt).collect()),
                    ),
                ])
            })
            .collect();
        let feed: Vec<JsonValue> = self
            .feed
            .iter()
            .map(|e| {
                JsonValue::Obj(vec![
                    ("at_us".into(), JsonValue::UInt(e.at)),
                    ("text".into(), JsonValue::Str(e.text.clone())),
                ])
            })
            .collect();
        JsonValue::Obj(vec![
            ("at_us".into(), JsonValue::UInt(self.now)),
            ("n".into(), JsonValue::UInt(self.n as u64)),
            ("records_folded".into(), JsonValue::UInt(self.records)),
            ("records_shed".into(), JsonValue::UInt(self.shed)),
            ("cycles".into(), JsonValue::UInt(self.cycles)),
            ("partitioned".into(), JsonValue::Bool(self.partitioned)),
            (
                "tainted_nodes".into(),
                JsonValue::UInt(self.tainted_count() as u64),
            ),
            ("window_us".into(), JsonValue::UInt(self.window_us)),
            ("nodes".into(), JsonValue::Arr(nodes)),
            ("events".into(), JsonValue::Arr(feed)),
        ])
    }

    /// The `/shards` document.
    pub fn shards_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("at_us".into(), JsonValue::UInt(self.now)),
            (
                "shards".into(),
                JsonValue::Arr(self.shards.iter().map(ShardGauge::to_json).collect()),
            ),
        ])
    }

    /// The `/metrics` document: Prometheus text exposition format
    /// (version 0.0.4) over the same aggregator state.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let gauge = |buf: &mut String, name: &str, help: &str| {
            let _ = writeln!(buf, "# HELP {name} {help}");
            let _ = writeln!(buf, "# TYPE {name} gauge");
        };
        let counter = |buf: &mut String, name: &str, help: &str| {
            let _ = writeln!(buf, "# HELP {name} {help}");
            let _ = writeln!(buf, "# TYPE {name} counter");
        };

        gauge(&mut out, "sss_model_time_us", "Newest folded model time");
        let _ = writeln!(out, "sss_model_time_us {}", self.now);
        counter(&mut out, "sss_records_folded_total", "Trace records folded");
        let _ = writeln!(out, "sss_records_folded_total {}", self.records);
        counter(
            &mut out,
            "sss_records_shed_total",
            "Trace records shed by the live subscription",
        );
        let _ = writeln!(out, "sss_records_shed_total {}", self.shed);
        counter(
            &mut out,
            "sss_cycles_total",
            "Asynchronous cycles completed",
        );
        let _ = writeln!(out, "sss_cycles_total {}", self.cycles);
        gauge(
            &mut out,
            "sss_partitioned",
            "1 while a group partition is active",
        );
        let _ = writeln!(out, "sss_partitioned {}", u8::from(self.partitioned));

        gauge(&mut out, "sss_node_up", "1 if the node is not crashed");
        for (i, nm) in self.nodes.iter().enumerate() {
            let _ = writeln!(
                out,
                "sss_node_up{{node=\"p{i}\"}} {}",
                u8::from(nm.health == NodeHealth::Up)
            );
        }
        gauge(
            &mut out,
            "sss_node_tainted",
            "1 while corrupted state has not re-stabilized",
        );
        for (i, nm) in self.nodes.iter().enumerate() {
            let _ = writeln!(
                out,
                "sss_node_tainted{{node=\"p{i}\"}} {}",
                u8::from(nm.tainted)
            );
        }
        gauge(
            &mut out,
            "sss_node_byzantine",
            "1 while the fault plane rewrites this node's outgoing messages",
        );
        for (i, nm) in self.nodes.iter().enumerate() {
            let _ = writeln!(
                out,
                "sss_node_byzantine{{node=\"p{i}\"}} {}",
                u8::from(nm.byzantine_suspected)
            );
        }
        gauge(
            &mut out,
            "sss_node_epoch",
            "Current bounded-counter global-reset epoch",
        );
        for (i, nm) in self.nodes.iter().enumerate() {
            let _ = writeln!(out, "sss_node_epoch{{node=\"p{i}\"}} {}", nm.epoch);
        }
        counter(
            &mut out,
            "sss_node_stale_epoch_dropped_total",
            "Messages discarded for carrying a stale epoch tag",
        );
        for (i, nm) in self.nodes.iter().enumerate() {
            let _ = writeln!(
                out,
                "sss_node_stale_epoch_dropped_total{{node=\"p{i}\"}} {}",
                nm.stale_epoch_dropped
            );
        }
        gauge(
            &mut out,
            "sss_node_quorum_reachable",
            "Nodes reachable from this node, itself included",
        );
        for i in 0..self.n {
            let _ = writeln!(
                out,
                "sss_node_quorum_reachable{{node=\"p{i}\"}} {}",
                self.reachable(i)
            );
        }
        counter(
            &mut out,
            "sss_node_stabilized_total",
            "Stabilization probes passed",
        );
        for (i, nm) in self.nodes.iter().enumerate() {
            let _ = writeln!(
                out,
                "sss_node_stabilized_total{{node=\"p{i}\"}} {}",
                nm.stabilizations
            );
        }
        counter(
            &mut out,
            "sss_node_ops_completed_total",
            "Operations completed",
        );
        for (i, nm) in self.nodes.iter().enumerate() {
            let _ = writeln!(
                out,
                "sss_node_ops_completed_total{{node=\"p{i}\"}} {}",
                nm.completed
            );
        }
        counter(
            &mut out,
            "sss_node_drops_total",
            "Messages dropped, by cause",
        );
        for (i, nm) in self.nodes.iter().enumerate() {
            for (ci, cause) in ["link_down", "loss", "capacity", "crashed"]
                .iter()
                .enumerate()
            {
                let _ = writeln!(
                    out,
                    "sss_node_drops_total{{node=\"p{i}\",cause=\"{cause}\"}} {}",
                    nm.drops[ci]
                );
            }
        }
        gauge(
            &mut out,
            "sss_node_op_latency_us",
            "Recent completed-op latency quantiles",
        );
        for (i, nm) in self.nodes.iter().enumerate() {
            let lat = nm.latency();
            for (q, v) in [("0.5", lat.p50), ("0.95", lat.p95), ("0.99", lat.p99)] {
                let _ = writeln!(
                    out,
                    "sss_node_op_latency_us{{node=\"p{i}\",quantile=\"{q}\"}} {v}"
                );
            }
        }
        if !self.shards.is_empty() {
            gauge(&mut out, "sss_shard_queue_depth", "Admission queue depth");
            for s in &self.shards {
                let _ = writeln!(
                    out,
                    "sss_shard_queue_depth{{shard=\"{}\"}} {}",
                    s.shard, s.queue_depth
                );
            }
            gauge(
                &mut out,
                "sss_shard_collapse_factor",
                "Requests absorbed per protocol op issued by group commit",
            );
            for s in &self.shards {
                let _ = writeln!(
                    out,
                    "sss_shard_collapse_factor{{shard=\"{}\"}} {:.2}",
                    s.shard,
                    s.collapse_factor()
                );
            }
            counter(&mut out, "sss_shard_completed_total", "Requests completed");
            for s in &self.shards {
                let _ = writeln!(
                    out,
                    "sss_shard_completed_total{{shard=\"{}\"}} {}",
                    s.shard, s.completed
                );
            }
        }
        out
    }
}

/// A turnkey live ops plane: masked tracer → bounded shed-not-stall
/// subscription → background folder thread over a shared
/// [`ClusterMetrics`].
///
/// Hand [`OpsPlane::tracer`] clones to any backend (`new_traced`,
/// `run_traced`, a chaos campaign via the tracer-as-sink tap) and read
/// the rolling state through [`OpsPlane::metrics`] /
/// [`OpsPlane::snapshot`] — the dashboard and the HTTP server both serve
/// off the same `Arc`.
pub struct OpsPlane {
    metrics: Arc<Mutex<ClusterMetrics>>,
    tracer: Tracer,
    stop: Arc<AtomicBool>,
    folder: Option<std::thread::JoinHandle<()>>,
}

/// Channel depth of the ops plane's live subscription.
const OPS_CHANNEL_DEPTH: usize = 65_536;

impl OpsPlane {
    /// Starts an ops plane for `n` nodes with the
    /// [`EventMask::OPS_PLANE`] mask and default sparkline window.
    pub fn start(n: usize) -> OpsPlane {
        OpsPlane::start_with(n, EventMask::OPS_PLANE, DEFAULT_WINDOW_US)
    }

    /// Starts an ops plane with an explicit event mask and sparkline
    /// window width.
    pub fn start_with(n: usize, mask: EventMask, window_us: u64) -> OpsPlane {
        let metrics = Arc::new(Mutex::new(ClusterMetrics::with_window(n, window_us)));
        let (sink, sub) = SubscriberSink::bounded(OPS_CHANNEL_DEPTH);
        let tracer = Tracer::new(n).with_mask(mask).with_sink(sink);
        let stop = Arc::new(AtomicBool::new(false));
        let folder = {
            let metrics = Arc::clone(&metrics);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("sss-ops-folder".into())
                .spawn(move || {
                    // Poll, never park in the channel: a receiver blocked
                    // in recv() makes every producer-side send pay a
                    // thread wakeup — a hot-path tax on the very backends
                    // the mask is there to keep fast. Polling trades ≤5ms
                    // of staleness (invisible to a dashboard) for a
                    // wake-free send.
                    let idle = Duration::from_millis(5);
                    loop {
                        if let Some(rec) = sub.try_recv() {
                            let mut m = metrics.lock();
                            m.fold(&rec);
                            // Drain whatever queued behind it under one
                            // lock acquisition.
                            while let Some(next) = sub.try_recv() {
                                m.fold(&next);
                            }
                            m.note_shed(sub.shed());
                        } else {
                            metrics.lock().note_shed(sub.shed());
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                            std::thread::sleep(idle);
                        }
                    }
                })
                .expect("spawn ops folder thread")
        };
        OpsPlane {
            metrics,
            tracer,
            stop,
            folder: Some(folder),
        }
    }

    /// A tracer handle to attach to a backend. Clones share the plane.
    pub fn tracer(&self) -> Tracer {
        self.tracer.clone()
    }

    /// The shared rolling state (lock to read or to push shard gauges).
    pub fn metrics(&self) -> Arc<Mutex<ClusterMetrics>> {
        Arc::clone(&self.metrics)
    }

    /// A point-in-time clone of the rolling state.
    pub fn snapshot(&self) -> ClusterMetrics {
        self.metrics.lock().clone()
    }

    /// Stops the folder thread (draining what is already queued) and
    /// returns the final state.
    pub fn stop(mut self) -> ClusterMetrics {
        self.shutdown();
        let m = self.metrics.lock().clone();
        m
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Dropping our tracer handle lets the channel disconnect once
        // every backend handle is gone too; the stop flag covers the
        // case where one still lingers.
        self.tracer = Tracer::off();
        if let Some(h) = self.folder.take() {
            let _ = h.join();
        }
    }
}

impl Drop for OpsPlane {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sss_types::{MsgKind, NodeId, OpClass, OpId};

    fn rec(seq: u64, at: TraceTime, event: TraceEvent) -> TraceRecord {
        TraceRecord { seq, at, event }
    }

    fn fault(kind: FaultKind, node: Option<usize>, peer: Option<usize>) -> TraceEvent {
        TraceEvent::Fault {
            kind,
            node: node.map(NodeId),
            peer: peer.map(NodeId),
        }
    }

    #[test]
    fn health_and_taint_follow_the_fault_stream() {
        let mut m = ClusterMetrics::new(3);
        assert_eq!(m.node(1).health, NodeHealth::Up);
        m.fold(&rec(0, 100, fault(FaultKind::Crash, Some(1), None)));
        assert_eq!(m.node(1).health, NodeHealth::Crashed);
        assert_eq!(m.reachable(1), 0, "a crashed node reaches nobody");
        assert_eq!(m.reachable(0), 2, "peers see the crash");
        assert!(m.quorum_ok(0), "2 of 3 is still a majority");
        m.fold(&rec(1, 200, fault(FaultKind::Resume, Some(1), None)));
        assert_eq!(m.node(1).health, NodeHealth::Up);
        assert_eq!(m.reachable(0), 3);

        m.fold(&rec(2, 300, fault(FaultKind::Corrupt, Some(2), None)));
        assert!(m.node(2).tainted);
        assert_eq!(m.tainted_count(), 1);
        m.fold(&rec(3, 400, TraceEvent::Stabilized { node: NodeId(2) }));
        assert!(!m.node(2).tainted);
        assert_eq!(m.node(2).stabilizations, 1);
        assert_eq!(m.node(2).corruptions, 1);

        // The feed saw all four transitions.
        let texts: Vec<&str> = m.feed().map(|e| e.text.as_str()).collect();
        assert_eq!(
            texts,
            ["crash p1", "resume p1", "corrupt p2", "stabilized p2"]
        );
    }

    #[test]
    fn latency_flows_into_summary_and_sparkline() {
        let mut m = ClusterMetrics::with_window(2, 100);
        for (i, (t0, t1)) in [(0u64, 40u64), (100, 120), (210, 290)].iter().enumerate() {
            let id = OpId(i as u64);
            m.fold(&rec(
                0,
                *t0,
                TraceEvent::OpInvoke {
                    node: NodeId(0),
                    id,
                    class: OpClass::Write,
                },
            ));
            m.fold(&rec(
                1,
                *t1,
                TraceEvent::OpComplete {
                    node: NodeId(0),
                    id,
                    class: OpClass::Write,
                },
            ));
        }
        let lat = m.node(0).latency();
        assert_eq!(lat.count, 3);
        assert_eq!(lat.min, 20);
        assert_eq!(lat.max, 80);
        assert_eq!(m.node(0).inflight(), 0);
        // Three completions in windows 0, 1, 2 → the sparkline's last
        // three cells carry their p50s.
        let spark = m.node(0).sparkline();
        assert_eq!(spark.len(), SPARK_WINDOWS);
        assert_eq!(&spark[SPARK_WINDOWS - 3..], &[40, 20, 80]);
        // Node 1 saw nothing.
        assert_eq!(m.node(1).latency().count, 0);
        assert_eq!(m.node(1).sparkline(), vec![0; SPARK_WINDOWS]);
    }

    #[test]
    fn partition_reachability_is_learned_from_drop_evidence() {
        let mut m = ClusterMetrics::new(4);
        m.fold(&rec(0, 10, fault(FaultKind::Partition, None, None)));
        assert!(m.partitioned());
        // Groups {0,1} | {2,3}: the trace shows link-down drops across
        // the cut as traffic hits it.
        for (f, t) in [(0usize, 2usize), (0, 3), (2, 0), (2, 1), (3, 1)] {
            m.fold(&rec(
                1,
                20,
                TraceEvent::Drop {
                    from: NodeId(f),
                    to: NodeId(t),
                    kind: MsgKind::Gossip,
                    cause: DropCause::LinkDown,
                },
            ));
        }
        assert_eq!(m.reachable(0), 2, "p0 sees {{p0, p1}}");
        assert!(!m.quorum_ok(0), "2 of 4 is not a majority");
        assert_eq!(m.quorum_required(), 3);
        // Heal restores everything.
        m.fold(&rec(2, 30, fault(FaultKind::Heal, None, None)));
        assert!(!m.partitioned());
        assert_eq!(m.reachable(0), 4);
        assert!(m.quorum_ok(0));
    }

    #[test]
    fn explicit_link_faults_cut_and_restore() {
        let mut m = ClusterMetrics::new(3);
        m.fold(&rec(0, 10, fault(FaultKind::LinkDown, Some(0), Some(2))));
        assert_eq!(m.reachable(0), 2);
        assert_eq!(m.reachable(2), 3, "cuts are directed");
        m.fold(&rec(1, 20, fault(FaultKind::LinkUp, Some(0), Some(2))));
        assert_eq!(m.reachable(0), 3);
    }

    #[test]
    fn drops_count_by_cause_and_loss_does_not_imply_a_cut() {
        let mut m = ClusterMetrics::new(2);
        m.fold(&rec(
            0,
            10,
            TraceEvent::Drop {
                from: NodeId(0),
                to: NodeId(1),
                kind: MsgKind::Write,
                cause: DropCause::Loss,
            },
        ));
        assert_eq!(m.node(0).drops[1], 1);
        assert_eq!(m.node(0).drops_total(), 1);
        assert_eq!(m.reachable(0), 2, "plain loss is not link evidence");
        // Link-down drops outside a partition window don't create cuts
        // either (they could be a stale plan link; only the partition
        // window makes the inference sound).
        m.fold(&rec(
            1,
            20,
            TraceEvent::Drop {
                from: NodeId(0),
                to: NodeId(1),
                kind: MsgKind::Write,
                cause: DropCause::LinkDown,
            },
        ));
        assert_eq!(m.reachable(0), 2);
    }

    #[test]
    fn folding_is_deterministic() {
        let stream: Vec<TraceRecord> = vec![
            rec(0, 10, fault(FaultKind::Corrupt, Some(0), None)),
            rec(
                1,
                20,
                TraceEvent::OpInvoke {
                    node: NodeId(1),
                    id: OpId(7),
                    class: OpClass::Snapshot,
                },
            ),
            rec(
                2,
                60,
                TraceEvent::OpComplete {
                    node: NodeId(1),
                    id: OpId(7),
                    class: OpClass::Snapshot,
                },
            ),
            rec(3, 80, TraceEvent::Stabilized { node: NodeId(0) }),
            rec(4, 90, TraceEvent::CycleEnd { index: 4 }),
        ];
        let mut a = ClusterMetrics::new(3);
        let mut b = ClusterMetrics::new(3);
        a.fold_all(&stream);
        b.fold_all(&stream);
        assert_eq!(
            a.to_node_info_json().render(),
            b.to_node_info_json().render()
        );
        assert_eq!(a.to_prometheus(), b.to_prometheus());
        assert_eq!(a.cycles(), 5);
    }

    #[test]
    fn node_info_json_round_trips_and_carries_the_schema() {
        let mut m = ClusterMetrics::new(2);
        m.fold(&rec(0, 10, fault(FaultKind::Crash, Some(1), None)));
        m.note_shed(17);
        let doc = JsonValue::parse(&m.to_node_info_json().render()).unwrap();
        assert_eq!(doc.get("n").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(
            doc.get("records_shed").and_then(JsonValue::as_u64),
            Some(17)
        );
        let nodes = doc.get("nodes").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(nodes.len(), 2);
        assert_eq!(
            nodes[1].get("health").and_then(JsonValue::as_str),
            Some("crashed")
        );
        let q = nodes[0].get("quorum").unwrap();
        assert_eq!(q.get("reachable").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(q.get("ok").and_then(JsonValue::as_bool), Some(false));
        let events = doc.get("events").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(
            events[0].get("text").and_then(JsonValue::as_str),
            Some("crash p1")
        );
    }

    #[test]
    fn prometheus_output_is_well_formed() {
        let mut m = ClusterMetrics::new(2);
        m.fold(&rec(0, 10, fault(FaultKind::Corrupt, Some(0), None)));
        m.set_shards(vec![ShardGauge {
            shard: 0,
            queue_depth: 5,
            absorbed: 40,
            protocol_ops: 10,
            ..ShardGauge::default()
        }]);
        let text = m.to_prometheus();
        assert!(text.contains("sss_node_tainted{node=\"p0\"} 1"));
        assert!(text.contains("sss_node_up{node=\"p1\"} 1"));
        assert!(text.contains("sss_shard_queue_depth{shard=\"0\"} 5"));
        assert!(text.contains("sss_shard_collapse_factor{shard=\"0\"} 4.00"));
        // Every non-comment line is `name{labels} value` or `name value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(
                value.parse::<f64>().is_ok(),
                "unparsable sample value in {line:?}"
            );
            assert!(parts.next().is_some());
        }
    }

    #[test]
    fn shard_gauge_collapse_and_json() {
        let g = ShardGauge {
            shard: 3,
            queue_depth: 7,
            accepted: 100,
            completed: 90,
            absorbed: 90,
            protocol_ops: 30,
            ..ShardGauge::default()
        };
        assert!((g.collapse_factor() - 3.0).abs() < 1e-9);
        let j = g.to_json();
        assert_eq!(j.get("shard").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(j.get("queue_depth").and_then(JsonValue::as_u64), Some(7));
        assert_eq!(
            j.get("collapse_factor").and_then(JsonValue::as_f64),
            Some(3.0)
        );
        assert_eq!(ShardGauge::default().collapse_factor(), 1.0);
    }

    #[test]
    fn ops_plane_folds_live_emissions() {
        let plane = OpsPlane::start(3);
        let tracer = plane.tracer();
        tracer.emit(
            10,
            TraceEvent::Fault {
                kind: FaultKind::Crash,
                node: Some(NodeId(2)),
                peer: None,
            },
        );
        tracer.emit(
            500,
            TraceEvent::Send {
                from: NodeId(0),
                to: NodeId(1),
                kind: MsgKind::Gossip,
                bits: 64,
            },
        ); // masked out by OPS_PLANE
        tracer.emit(900, TraceEvent::Stabilized { node: NodeId(2) });
        drop(tracer);
        let m = plane.stop();
        assert_eq!(m.records(), 2, "send was masked before the channel");
        assert_eq!(m.node(2).health, NodeHealth::Crashed);
        assert_eq!(m.node(2).stabilizations, 1);
        assert_eq!(m.now(), 900);
    }
}
