//! A minimal hand-rolled HTTP/1.1 status server over the ops-plane
//! aggregator — no framework, one thread, std's `TcpListener`.
//!
//! Endpoints, all `GET`, all read-only snapshots of the shared
//! [`ClusterMetrics`]:
//!
//! * `/node_info` — the full aggregator state as JSON
//!   ([`ClusterMetrics::to_node_info_json`]);
//! * `/metrics` — Prometheus text exposition format
//!   ([`ClusterMetrics::to_prometheus`]);
//! * `/shards` — per-shard service gauges as JSON
//!   ([`ClusterMetrics::shards_json`]);
//! * `/` — a one-line index.
//!
//! The server binds synchronously (so an ephemeral `port: 0` caller can
//! read the real address back) and serves each connection to completion
//! on its single thread — the payloads are small and the consumer is an
//! operator's `curl` or a scrape loop, not production traffic.

use crate::metrics::ClusterMetrics;
use parking_lot::Mutex;
use std::io::{BufRead, BufReader, Result as IoResult, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A running ops HTTP server. Dropping it stops the listener thread.
pub struct OpsHttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl OpsHttpServer {
    /// Binds `127.0.0.1:port` (use `0` for an ephemeral port) and starts
    /// serving `metrics`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (port in use, no loopback, …).
    pub fn serve(metrics: Arc<Mutex<ClusterMetrics>>, port: u16) -> IoResult<OpsHttpServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("sss-ops-http".into())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        if let Ok(stream) = conn {
                            let _ = serve_one(stream, &metrics);
                        }
                    }
                })?
        };
        Ok(OpsHttpServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (the real port, for ephemeral binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for OpsHttpServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Nudge the blocking accept so the thread observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn serve_one(stream: TcpStream, metrics: &Arc<Mutex<ClusterMetrics>>) -> IoResult<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the header block so well-behaved clients see a clean close.
    let mut header = String::new();
    while reader.read_line(&mut header).is_ok() {
        if header == "\r\n" || header == "\n" || header.is_empty() {
            break;
        }
        header.clear();
    }

    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let mut out = stream;
    if method != "GET" {
        return respond(&mut out, 405, "text/plain", "method not allowed\n");
    }
    // Snapshot under the lock, render outside it.
    let snapshot = metrics.lock().clone();
    match path {
        "/node_info" => respond(
            &mut out,
            200,
            "application/json",
            &snapshot.to_node_info_json().render(),
        ),
        "/metrics" => respond(
            &mut out,
            200,
            "text/plain; version=0.0.4",
            &snapshot.to_prometheus(),
        ),
        "/shards" => respond(
            &mut out,
            200,
            "application/json",
            &snapshot.shards_json().render(),
        ),
        "/" => respond(
            &mut out,
            200,
            "text/plain",
            "sss live ops plane: /node_info /metrics /shards\n",
        ),
        _ => respond(&mut out, 404, "text/plain", "not found\n"),
    }
}

fn respond(stream: &mut TcpStream, status: u16, content_type: &str, body: &str) -> IoResult<()> {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{FaultKind, TraceEvent, TraceRecord};
    use crate::jsonv::JsonValue;
    use sss_types::NodeId;
    use std::io::Read;

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut text = String::new();
        s.read_to_string(&mut text).unwrap();
        let status: u16 = text
            .split_whitespace()
            .nth(1)
            .and_then(|c| c.parse().ok())
            .unwrap_or(0);
        let body = text
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn serves_all_endpoints_off_shared_state() {
        let metrics = Arc::new(Mutex::new(ClusterMetrics::new(3)));
        metrics.lock().fold(&TraceRecord {
            seq: 0,
            at: 42,
            event: TraceEvent::Fault {
                kind: FaultKind::Crash,
                node: Some(NodeId(1)),
                peer: None,
            },
        });
        let server = OpsHttpServer::serve(Arc::clone(&metrics), 0).unwrap();
        let addr = server.addr();
        assert_ne!(addr.port(), 0, "ephemeral port resolved");

        let (status, body) = get(addr, "/node_info");
        assert_eq!(status, 200);
        let doc = JsonValue::parse(&body).unwrap();
        let nodes = doc.get("nodes").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(
            nodes[1].get("health").and_then(JsonValue::as_str),
            Some("crashed")
        );

        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(body.contains("sss_node_up{node=\"p1\"} 0"));

        let (status, body) = get(addr, "/shards");
        assert_eq!(status, 200);
        assert!(JsonValue::parse(&body).is_ok());

        // Live: mutate the shared state, the endpoint reflects it.
        metrics.lock().fold(&TraceRecord {
            seq: 1,
            at: 99,
            event: TraceEvent::Fault {
                kind: FaultKind::Resume,
                node: Some(NodeId(1)),
                peer: None,
            },
        });
        let (_, body) = get(addr, "/metrics");
        assert!(body.contains("sss_node_up{node=\"p1\"} 1"));

        let (status, _) = get(addr, "/nope");
        assert_eq!(status, 404);
        let (status, _) = get(addr, "/");
        assert_eq!(status, 200);
        drop(server); // clean shutdown joins the listener thread
    }
}
