//! Workload generators and fault schedules for snapshot-object
//! experiments.
//!
//! Three kinds of load:
//!
//! * [`MixedDriver`] — a closed-loop driver: each participating node keeps
//!   one operation outstanding, choosing writes vs snapshots by a
//!   configurable ratio, with uniform think times. Values are globally
//!   unique (`(node, sequence)` encodings), which is what makes recorded
//!   histories black-box checkable by `sss-checker`.
//! * [`schedule_open_loop`] — pre-scheduled operations at given times
//!   (independent of completions), for overload and burst scenarios.
//! * [`FaultPlan`] — the *shared fault plane*'s declarative schedule of
//!   crashes / resumes / restarts / corruptions / partitions, re-exported
//!   from `sss-net` and applied via `Sim::apply_plan` or
//!   `Cluster::apply_plan`.
//!
//! All generators are seeded and deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sss_sim::{Ctl, Driver, Sim, SimTime};
use sss_types::{NodeId, OpId, OpResponse, Protocol, SnapshotOp};

// The fault schedule and value encoding now live in the shared fault
// plane; re-exported here so existing experiment code keeps compiling.
pub use sss_net::{unique_value, FaultEvent, FaultPlan, WorkloadSpec};

/// Configuration of a [`MixedDriver`].
#[derive(Clone, Debug)]
pub struct MixedConfig {
    /// Number of operations each participating node performs.
    pub ops_per_node: usize,
    /// Probability that an operation is a write (vs a snapshot).
    pub write_ratio: f64,
    /// Uniform think-time range between an operation's completion and the
    /// next invocation, in virtual microseconds.
    pub think: (SimTime, SimTime),
    /// RNG seed.
    pub seed: u64,
    /// Participating nodes; `None` = all nodes.
    pub nodes: Option<Vec<NodeId>>,
}

impl Default for MixedConfig {
    fn default() -> Self {
        MixedConfig {
            ops_per_node: 10,
            write_ratio: 0.5,
            think: (0, 200),
            seed: 7,
            nodes: None,
        }
    }
}

/// A closed-loop mixed read/write driver. See the [crate docs](self).
#[derive(Debug)]
pub struct MixedDriver {
    cfg: MixedConfig,
    rng: StdRng,
    remaining: Vec<usize>,
    next_seq: Vec<u64>,
    outstanding: usize,
    /// Stop the simulation once every issued operation completed
    /// (default `true`; disable to keep simulating background gossip).
    pub stop_when_done: bool,
}

impl MixedDriver {
    /// A driver for a system of `n` nodes.
    pub fn new(n: usize, cfg: MixedConfig) -> Self {
        let mut remaining = vec![0usize; n];
        match &cfg.nodes {
            None => remaining.iter_mut().for_each(|r| *r = cfg.ops_per_node),
            Some(list) => {
                for id in list {
                    remaining[id.index()] = cfg.ops_per_node;
                }
            }
        }
        MixedDriver {
            rng: StdRng::seed_from_u64(cfg.seed),
            remaining,
            next_seq: vec![0; n],
            outstanding: 0,
            stop_when_done: true,
            cfg,
        }
    }

    /// Operations not yet issued.
    pub fn remaining_ops(&self) -> usize {
        self.remaining.iter().sum()
    }

    fn next_op(&mut self, node: NodeId) -> Option<SnapshotOp> {
        let k = node.index();
        if self.remaining[k] == 0 {
            return None;
        }
        self.remaining[k] -= 1;
        if self.rng.gen_bool(self.cfg.write_ratio) {
            self.next_seq[k] += 1;
            Some(SnapshotOp::Write(unique_value(node, self.next_seq[k])))
        } else {
            Some(SnapshotOp::Snapshot)
        }
    }

    fn think(&mut self) -> SimTime {
        let (lo, hi) = self.cfg.think;
        if hi > lo {
            self.rng.gen_range(lo..=hi)
        } else {
            lo
        }
    }
}

impl<P: Protocol> Driver<P> for MixedDriver {
    fn init(&mut self, ctl: &mut Ctl<'_, P::Msg>) {
        for k in 0..self.remaining.len() {
            let node = NodeId(k);
            let delay = self.think();
            if let Some(op) = self.next_op(node) {
                ctl.invoke_at(delay, node, op);
                self.outstanding += 1;
            }
        }
    }

    fn on_completion(
        &mut self,
        node: NodeId,
        _id: OpId,
        _resp: &OpResponse,
        ctl: &mut Ctl<'_, P::Msg>,
    ) {
        self.outstanding -= 1;
        let delay = self.think();
        if let Some(op) = self.next_op(node) {
            ctl.invoke_at(ctl.now() + delay, node, op);
            self.outstanding += 1;
        } else if self.outstanding == 0 && self.stop_when_done {
            ctl.stop();
        }
    }
}

/// Pre-schedules `count` operations across `nodes`, uniformly over
/// `[0, horizon)`, independent of completions (open loop). Returns the
/// scheduled operation ids.
pub fn schedule_open_loop<P: Protocol>(
    sim: &mut Sim<P>,
    nodes: &[NodeId],
    count: usize,
    horizon: SimTime,
    write_ratio: f64,
    seed: u64,
) -> Vec<OpId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seqs = vec![0u64; nodes.iter().map(|n| n.index() + 1).max().unwrap_or(1)];
    let mut ids = Vec::with_capacity(count);
    for _ in 0..count {
        let node = nodes[rng.gen_range(0..nodes.len())];
        let at = rng.gen_range(0..horizon.max(1));
        let op = if rng.gen_bool(write_ratio) {
            seqs[node.index()] += 1;
            SnapshotOp::Write(unique_value(node, seqs[node.index()]))
        } else {
            SnapshotOp::Snapshot
        };
        ids.push(sim.invoke_at(at, node, op));
    }
    ids
}

/// Pre-schedules bursts of operations: `bursts` groups of `burst_size`
/// operations each, the group starting at a random time and its members
/// packed within `spread` microseconds — an overload pattern that
/// stresses the protocols' queueing. Returns the scheduled ids.
pub fn schedule_bursts<P: Protocol>(
    sim: &mut Sim<P>,
    nodes: &[NodeId],
    bursts: usize,
    burst_size: usize,
    horizon: SimTime,
    spread: SimTime,
    seed: u64,
) -> Vec<OpId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seqs = vec![0u64; nodes.iter().map(|n| n.index() + 1).max().unwrap_or(1)];
    let mut ids = Vec::with_capacity(bursts * burst_size);
    for _ in 0..bursts {
        let start = rng.gen_range(0..horizon.max(1));
        for _ in 0..burst_size {
            let node = nodes[rng.gen_range(0..nodes.len())];
            let at = start + rng.gen_range(0..spread.max(1));
            let op = if rng.gen_bool(0.5) {
                seqs[node.index()] += 1;
                SnapshotOp::Write(unique_value(node, seqs[node.index()]))
            } else {
                SnapshotOp::Snapshot
            };
            ids.push(sim.invoke_at(at, node, op));
        }
    }
    ids
}

/// An open-loop population of keyed client sessions for the sharded
/// service layer (experiment E17).
///
/// Each session holds one sticky key (drawn uniformly from
/// `key_space` by hashing the session id) and issues
/// `ops_per_session` operations against it. [`SessionSpec::events`]
/// interleaves the sessions round-robin — op `r` of every session
/// precedes op `r + 1` of any session — so a million sessions are all
/// *concurrently* in flight rather than replayed one after another.
///
/// Everything is a pure function of `(spec, event index)`: no RNG
/// state threads through the iterator, so generators on different
/// backends (or different machines) agree event-for-event, which is
/// what makes the simulated service's per-shard golden hashes
/// reproducible.
#[derive(Clone, Debug)]
pub struct SessionSpec {
    /// Number of client sessions.
    pub sessions: u64,
    /// Operations each session issues against its key.
    pub ops_per_session: u32,
    /// Probability that an operation is a write (vs a snapshot).
    pub write_ratio: f64,
    /// Size of the keyspace the sessions draw their keys from.
    pub key_space: u64,
    /// Seed for key assignment and the write/snapshot choice.
    pub seed: u64,
}

impl Default for SessionSpec {
    fn default() -> Self {
        SessionSpec {
            sessions: 10_000,
            ops_per_session: 1,
            write_ratio: 0.9,
            key_space: 1 << 20,
            seed: 0x5E55,
        }
    }
}

/// One generated operation of a [`SessionSpec`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionEvent {
    /// Issuing session.
    pub session: u64,
    /// The session's sticky key.
    pub key: u64,
    /// The operation. Write values encode `(session, round)` uniquely.
    pub op: SnapshotOp,
}

impl SessionSpec {
    /// Total operations across all sessions.
    pub fn total_ops(&self) -> u64 {
        self.sessions * self.ops_per_session as u64
    }

    /// The sticky key of `session`.
    pub fn key_of(&self, session: u64) -> u64 {
        sss_net::mix64(self.seed ^ 0x4B5E_5510, session) % self.key_space.max(1)
    }

    /// The `i`-th event of the round-robin interleaving. Pure, so any
    /// subrange can be regenerated independently.
    pub fn event(&self, i: u64) -> SessionEvent {
        debug_assert!(i < self.total_ops());
        let session = i % self.sessions;
        let round = (i / self.sessions) as u32;
        let key = self.key_of(session);
        // A 53-bit uniform draw decides write vs snapshot.
        let coin = sss_net::mix64(self.seed ^ 0x0DD5_C011, i) >> 11;
        let op = if (coin as f64) < self.write_ratio * (1u64 << 53) as f64 {
            // Unique across the run: (session, round) packed into the
            // value (`ops_per_session` fits 24 bits by construction).
            SnapshotOp::Write(((session + 1) << 24) | round as u64)
        } else {
            SnapshotOp::Snapshot
        };
        SessionEvent { session, key, op }
    }

    /// All events, interleaved round-robin across sessions.
    pub fn events(&self) -> impl Iterator<Item = SessionEvent> + '_ {
        (0..self.total_ops()).map(|i| self.event(i))
    }
}

/// Draws a writer according to a heavily skewed (Zipf-like, s = 1)
/// distribution over `nodes` — hot-writer workloads where one register
/// dominates the update traffic.
pub fn skewed_writer(nodes: &[NodeId], rng: &mut StdRng) -> NodeId {
    let n = nodes.len();
    let weights: Vec<f64> = (1..=n).map(|r| 1.0 / r as f64).collect();
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if x < *w {
            return nodes[i];
        }
        x -= w;
    }
    nodes[n - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sss_core::Alg1;
    use sss_sim::SimConfig;

    #[test]
    fn unique_values_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for node in 0..8 {
            for seq in 1..100 {
                assert!(seen.insert(unique_value(NodeId(node), seq)));
            }
        }
    }

    #[test]
    fn mixed_driver_issues_exactly_the_configured_ops() {
        let cfg = MixedConfig {
            ops_per_node: 5,
            write_ratio: 0.6,
            think: (0, 50),
            seed: 3,
            nodes: None,
        };
        let mut sim = Sim::new(SimConfig::small(3), |id| Alg1::new(id, 3));
        let mut driver = MixedDriver::new(3, cfg);
        sim.run_with_driver(&mut driver, 60_000_000);
        assert_eq!(sim.history().len(), 15);
        assert_eq!(sim.history().completed().count(), 15);
    }

    #[test]
    fn mixed_driver_respects_node_subset() {
        let cfg = MixedConfig {
            ops_per_node: 3,
            nodes: Some(vec![NodeId(1)]),
            ..MixedConfig::default()
        };
        let mut sim = Sim::new(SimConfig::small(3), |id| Alg1::new(id, 3));
        let mut driver = MixedDriver::new(3, cfg);
        sim.run_with_driver(&mut driver, 60_000_000);
        assert_eq!(sim.history().len(), 3);
        assert!(sim.history().records().iter().all(|r| r.node == NodeId(1)));
    }

    #[test]
    fn open_loop_schedules_count_ops() {
        let mut sim = Sim::new(SimConfig::small(3), |id| Alg1::new(id, 3));
        let nodes: Vec<NodeId> = (0..3).map(NodeId).collect();
        let ids = schedule_open_loop(&mut sim, &nodes, 12, 10_000, 0.5, 9);
        assert_eq!(ids.len(), 12);
        assert!(sim.run_until_idle(60_000_000));
        assert_eq!(sim.history().completed().count(), 12);
    }

    #[test]
    fn fault_plan_applies_events() {
        let (plan, crashed) = FaultPlan::new()
            .at(100, FaultEvent::Corrupt(NodeId(0)))
            .crash_random_minority(5, 200, 42);
        assert!(!crashed.is_empty() && crashed.len() <= 2);
        let mut sim = Sim::new(SimConfig::small(5), |id| Alg1::new(id, 5));
        sim.apply_plan(&plan);
        sim.run_until(1_000);
        for node in crashed {
            assert!(sim.is_crashed(node));
        }
    }

    #[test]
    fn bursts_schedule_the_right_count() {
        let mut sim = Sim::new(SimConfig::small(3), |id| Alg1::new(id, 3));
        let nodes: Vec<NodeId> = (0..3).map(NodeId).collect();
        let ids = schedule_bursts(&mut sim, &nodes, 3, 4, 5_000, 200, 11);
        assert_eq!(ids.len(), 12);
        assert!(sim.run_until_idle(120_000_000));
        assert_eq!(sim.history().completed().count(), 12);
    }

    #[test]
    fn skew_prefers_low_ranked_nodes() {
        let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[skewed_writer(&nodes, &mut rng).index()] += 1;
        }
        assert!(
            counts[0] > counts[1] && counts[1] > counts[3],
            "zipf ordering: {counts:?}"
        );
        assert!(counts[0] > 4000 * 4 / 10, "head node dominates: {counts:?}");
    }

    #[test]
    fn session_spec_is_deterministic_sticky_and_complete() {
        let spec = SessionSpec {
            sessions: 100,
            ops_per_session: 3,
            write_ratio: 0.7,
            key_space: 1_000,
            seed: 11,
        };
        let a: Vec<SessionEvent> = spec.events().collect();
        let b: Vec<SessionEvent> = spec.events().collect();
        assert_eq!(a, b, "generation must be deterministic");
        assert_eq!(a.len() as u64, spec.total_ops());
        for ev in &a {
            assert!(ev.key < 1_000);
            assert_eq!(ev.key, spec.key_of(ev.session), "keys are sticky");
        }
        // Round-robin interleaving: the first `sessions` events cover
        // every session exactly once.
        let mut seen = std::collections::HashSet::new();
        for ev in &a[..100] {
            assert!(seen.insert(ev.session));
        }
        // Write values are unique across the whole run.
        let mut values = std::collections::HashSet::new();
        let mut writes = 0;
        for ev in &a {
            if let SnapshotOp::Write(v) = ev.op {
                assert!(values.insert(v), "duplicate write value {v}");
                writes += 1;
            }
        }
        // ~70% writes, with wide slack for the small sample.
        assert!((150..=270).contains(&writes), "writes: {writes}/300");
    }

    #[test]
    fn deterministic_generation() {
        let run = || {
            let mut sim = Sim::new(SimConfig::small(3), |id| Alg1::new(id, 3));
            let mut driver = MixedDriver::new(3, MixedConfig::default());
            sim.run_with_driver(&mut driver, 60_000_000);
            sim.trace_hash()
        };
        assert_eq!(run(), run());
    }
}
